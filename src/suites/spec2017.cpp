/**
 * @file
 * SPEC CPU2017 benchmark database.
 *
 * Every entry cites its Table I row (icount in billions, load / store /
 * branch percentages, Skylake CPI) and encodes the qualitative
 * behaviour the paper attributes to the benchmark.
 */

#include "spec2017.h"

#include "suites/profile_presets.h"

namespace speclens {
namespace suites {

namespace {

BenchmarkInfo
make(int id, const std::string &name, Category category, Domain domain,
     Language language, bool new_in_2017, const std::string &partner,
     const ProfileSpec &spec)
{
    BenchmarkInfo b;
    b.id = id;
    b.name = name;
    b.suite = Suite::Cpu2017;
    b.category = category;
    b.domain = domain;
    b.language = language;
    b.new_in_2017 = new_in_2017;
    b.partner = partner;
    b.published_cpi = spec.cpi;
    b.profile = buildProfile(name, spec);
    return b;
}

std::vector<BenchmarkInfo>
build()
{
    using D = DataLocality;
    using C = CodePressure;
    using B = BranchQuality;
    std::vector<BenchmarkInfo> v;
    v.reserve(43);

    // =================================================================
    // SPECrate INT (Table I: 10 benchmarks)
    // =================================================================

    {   // 500.perlbench_r: interpreter; big code footprint, high taken
        // share, highest I-cache activity in the suite (Sec. IV-E).
        ProfileSpec s;
        s.icount_billions = 2696; s.load_pct = 27.20; s.store_pct = 16.73;
        s.branch_pct = 18.16; s.cpi = 0.42;
        s.data = D::Small; s.streaming = 0.15; s.code = C::Large;
        s.branches = B::Moderate; s.taken_fraction = 0.62;
        s.tlb_stress = 0.10; s.kernel = 0.02;
        v.push_back(make(500, "500.perlbench_r", Category::RateInt,
                         Domain::Compiler, Language::C, false,
                         "600.perlbench_s", s));
    }
    {   // 502.gcc_r: ~50% memory ops, large code, highest taken-branch
        // fraction among INT codes (Fig. 9).
        ProfileSpec s;
        s.icount_billions = 3023; s.load_pct = 34.51; s.store_pct = 16.64;
        s.branch_pct = 14.96; s.cpi = 0.59;
        s.data = D::Medium; s.streaming = 0.15; s.code = C::Large;
        s.branches = B::Moderate; s.taken_fraction = 0.68;
        s.kernel = 0.02;
        v.push_back(make(502, "502.gcc_r", Category::RateInt,
                         Domain::Compiler, Language::C, false,
                         "602.gcc_s", s));
    }
    {   // 505.mcf_r: pointer chasing over a graph far larger than any
        // cache; the most distinct INT benchmark (Fig. 2), worst-case
        // data locality, hard branches, poor MLP.
        ProfileSpec s;
        s.icount_billions = 999; s.load_pct = 17.42; s.store_pct = 6.08;
        s.branch_pct = 11.54; s.cpi = 1.16;
        s.data = D::Extreme; s.streaming = 0.05; s.code = C::Medium;
        s.branches = B::VeryHard; s.taken_fraction = 0.66;
        s.tlb_stress = 0.50; s.mlp = 1.3;
        v.push_back(make(505, "505.mcf_r", Category::RateInt,
                         Domain::CombinatorialOptimization, Language::C,
                         false, "605.mcf_s", s));
    }
    {   // 520.omnetpp_r: discrete-event simulation; heap-allocated event
        // structures give memory-bound behaviour (highest CPI with mcf,
        // Fig. 1) and C++-style high taken fraction.
        ProfileSpec s;
        s.icount_billions = 1102; s.load_pct = 22.10; s.store_pct = 12.27;
        s.branch_pct = 14.12; s.cpi = 1.39;
        s.data = D::Large; s.streaming = 0.05; s.code = C::Medium;
        s.branches = B::Moderate; s.taken_fraction = 0.64;
        s.mlp = 1.2;
        v.push_back(make(520, "520.omnetpp_r", Category::RateInt,
                         Domain::DiscreteEventSimulation, Language::Cpp,
                         false, "620.omnetpp_s", s));
    }
    {   // 523.xalancbmk_r: XSLT processing; 33% branches (highest in the
        // suite) with a high taken share, back-end cache-bound (Fig. 1).
        ProfileSpec s;
        s.icount_billions = 1315; s.load_pct = 34.26; s.store_pct = 8.07;
        s.branch_pct = 33.26; s.cpi = 0.86;
        s.data = D::Large; s.streaming = 0.1; s.code = C::Large;
        s.branches = B::VeryEasy; s.taken_fraction = 0.68;
        v.push_back(make(523, "523.xalancbmk_r", Category::RateInt,
                         Domain::DocumentProcessing, Language::Cpp, false,
                         "623.xalancbmk_s", s));
    }
    {   // 525.x264_r: video encoder; SIMD-heavy streaming kernels with
        // very few branches (4.4%).
        ProfileSpec s;
        s.icount_billions = 4488; s.load_pct = 23.03; s.store_pct = 6.47;
        s.branch_pct = 4.37; s.cpi = 0.31; s.simd_pct = 12.0;
        s.data = D::Medium; s.streaming = 0.55; s.code = C::Medium;
        s.branches = B::Easy; s.taken_fraction = 0.55;
        v.push_back(make(525, "525.x264_r", Category::RateInt,
                         Domain::VideoProcessing, Language::C, true,
                         "625.x264_s", s));
    }
    {   // 531.deepsjeng_r: alpha-beta chess search; data-dependent
        // branches, small working set.
        ProfileSpec s;
        s.icount_billions = 1929; s.load_pct = 19.61; s.store_pct = 9.10;
        s.branch_pct = 11.61; s.cpi = 0.57;
        s.data = D::Small; s.streaming = 0.05; s.code = C::Medium;
        s.branches = B::Hard; s.taken_fraction = 0.52;
        s.tlb_stress = 0.05;
        v.push_back(make(531, "531.deepsjeng_r", Category::RateInt,
                         Domain::ArtificialIntelligence, Language::Cpp,
                         true, "631.deepsjeng_s", s));
    }
    {   // 541.leela_r: Go engine (MCTS); cache-resident but the highest
        // branch misprediction rate in the suite (Fig. 9, Table IX).
        ProfileSpec s;
        s.icount_billions = 2246; s.load_pct = 14.28; s.store_pct = 5.33;
        s.branch_pct = 8.95; s.cpi = 0.81;
        s.data = D::Resident; s.streaming = 0.05; s.code = C::Medium;
        s.branches = B::VeryHard; s.taken_fraction = 0.50;
        s.tlb_stress = 0.05;
        v.push_back(make(541, "541.leela_r", Category::RateInt,
                         Domain::ArtificialIntelligence, Language::Cpp,
                         true, "641.leela_s", s));
    }
    {   // 548.exchange2_r: recursive Sudoku generator; register/stack
        // resident, negligible cache misses, very high core power.
        ProfileSpec s;
        s.icount_billions = 6644; s.load_pct = 29.62; s.store_pct = 20.24;
        s.branch_pct = 8.69; s.cpi = 0.41;
        s.data = D::Resident; s.streaming = 0.3; s.code = C::Small;
        s.branches = B::Easy; s.taken_fraction = 0.55;
        v.push_back(make(548, "548.exchange2_r", Category::RateInt,
                         Domain::ArtificialIntelligence,
                         Language::Fortran, true, "648.exchange2_s", s));
    }
    {   // 557.xz_r: LZMA compression; match-finder branches are hard,
        // dictionary walks are page-sparse (high D-TLB sensitivity,
        // Table IX).
        ProfileSpec s;
        s.icount_billions = 1969; s.load_pct = 17.33; s.store_pct = 3.87;
        s.branch_pct = 12.24; s.cpi = 1.22;
        s.data = D::Large; s.streaming = 0.1; s.code = C::Small;
        s.branches = B::VeryHard; s.taken_fraction = 0.48;
        s.tlb_stress = 0.55; s.mlp = 1.5;
        v.push_back(make(557, "557.xz_r", Category::RateInt,
                         Domain::Compression, Language::C, true,
                         "657.xz_s", s));
    }

    // =================================================================
    // SPECspeed INT (Table I: 10 benchmarks)
    // =================================================================

    {   // 600.perlbench_s: near-identical to the rate version (Fig. 7).
        ProfileSpec s;
        s.icount_billions = 2696; s.load_pct = 27.20; s.store_pct = 16.73;
        s.branch_pct = 18.16; s.cpi = 0.42;
        s.data = D::Small; s.streaming = 0.15; s.code = C::Large;
        s.branches = B::Moderate; s.taken_fraction = 0.62;
        s.tlb_stress = 0.10; s.kernel = 0.02;
        v.push_back(make(600, "600.perlbench_s", Category::SpeedInt,
                         Domain::Compiler, Language::C, false,
                         "500.perlbench_r", s));
    }
    {   // 602.gcc_s: larger input than gcc_r (2.4x icount) but similar
        // behaviour; medium branch sensitivity (Table IX).
        ProfileSpec s;
        s.icount_billions = 7226; s.load_pct = 40.32; s.store_pct = 15.67;
        s.branch_pct = 15.60; s.cpi = 0.58;
        s.data = D::Medium; s.streaming = 0.15; s.code = C::Large;
        s.branches = B::Moderate; s.taken_fraction = 0.68;
        s.kernel = 0.02;
        v.push_back(make(602, "602.gcc_s", Category::SpeedInt,
                         Domain::Compiler, Language::C, false,
                         "502.gcc_r", s));
    }
    {   // 605.mcf_s: 11.2 GB footprint; most distinct benchmark in the
        // speed INT dendrogram (Fig. 2).
        ProfileSpec s;
        s.icount_billions = 1775; s.load_pct = 18.55; s.store_pct = 4.70;
        s.branch_pct = 12.53; s.cpi = 1.22;
        s.data = D::Extreme; s.streaming = 0.05; s.code = C::Medium;
        s.branches = B::VeryHard; s.taken_fraction = 0.66;
        s.tlb_stress = 0.55; s.mlp = 1.3;
        v.push_back(make(605, "605.mcf_s", Category::SpeedInt,
                         Domain::CombinatorialOptimization, Language::C,
                         false, "505.mcf_r", s));
    }
    {   // 620.omnetpp_s: one of the three INT pairs that differ between
        // rate and speed (Sec. IV-D); slightly friendlier locality than
        // the rate run (lower CPI in Table I).
        ProfileSpec s;
        s.icount_billions = 1102; s.load_pct = 22.76; s.store_pct = 12.65;
        s.branch_pct = 14.55; s.cpi = 1.21;
        s.data = D::Large; s.streaming = 0.35; s.code = C::Medium;
        s.branches = B::Moderate; s.taken_fraction = 0.64;
        s.mlp = 1.7;
        v.push_back(make(620, "620.omnetpp_s", Category::SpeedInt,
                         Domain::DiscreteEventSimulation, Language::Cpp,
                         false, "520.omnetpp_r", s));
    }
    {   // 623.xalancbmk_s: differs from its rate version (Sec. IV-D);
        // medium branch sensitivity (Table IX).
        ProfileSpec s;
        s.icount_billions = 1320; s.load_pct = 34.08; s.store_pct = 7.90;
        s.branch_pct = 33.18; s.cpi = 0.86;
        s.data = D::Large; s.streaming = 0.25; s.code = C::Large;
        s.branches = B::Easy; s.taken_fraction = 0.68;
        s.tlb_stress = 0.05;
        v.push_back(make(623, "623.xalancbmk_s", Category::SpeedInt,
                         Domain::DocumentProcessing, Language::Cpp, false,
                         "523.xalancbmk_r", s));
    }
    {   // 625.x264_s: much larger input than the rate run (2.8x icount,
        // different mix); differs from 525.x264_r (Sec. IV-D).
        ProfileSpec s;
        s.icount_billions = 12546; s.load_pct = 37.21; s.store_pct = 10.27;
        s.branch_pct = 4.59; s.cpi = 0.36; s.simd_pct = 12.0;
        s.data = D::Medium; s.streaming = 0.7; s.code = C::Medium;
        s.branches = B::Easy; s.taken_fraction = 0.55;
        v.push_back(make(625, "625.x264_s", Category::SpeedInt,
                         Domain::VideoProcessing, Language::C, true,
                         "525.x264_r", s));
    }
    {   // 631.deepsjeng_s: similar to the rate version.
        ProfileSpec s;
        s.icount_billions = 2250; s.load_pct = 19.75; s.store_pct = 9.37;
        s.branch_pct = 11.75; s.cpi = 0.55;
        s.data = D::Small; s.streaming = 0.05; s.code = C::Medium;
        s.branches = B::Hard; s.taken_fraction = 0.52;
        s.tlb_stress = 0.05;
        v.push_back(make(631, "631.deepsjeng_s", Category::SpeedInt,
                         Domain::ArtificialIntelligence, Language::Cpp,
                         true, "531.deepsjeng_r", s));
    }
    {   // 641.leela_s: similar to the rate version; picked as a subset
        // representative (Table V).
        ProfileSpec s;
        s.icount_billions = 2245; s.load_pct = 14.25; s.store_pct = 5.32;
        s.branch_pct = 8.94; s.cpi = 0.80;
        s.data = D::Resident; s.streaming = 0.05; s.code = C::Medium;
        s.branches = B::VeryHard; s.taken_fraction = 0.50;
        s.tlb_stress = 0.05;
        v.push_back(make(641, "641.leela_s", Category::SpeedInt,
                         Domain::ArtificialIntelligence, Language::Cpp,
                         true, "541.leela_r", s));
    }
    {   // 648.exchange2_s: identical behaviour to the rate version.
        ProfileSpec s;
        s.icount_billions = 6643; s.load_pct = 29.61; s.store_pct = 20.22;
        s.branch_pct = 8.67; s.cpi = 0.41;
        s.data = D::Resident; s.streaming = 0.3; s.code = C::Small;
        s.branches = B::Easy; s.taken_fraction = 0.55;
        v.push_back(make(648, "648.exchange2_s", Category::SpeedInt,
                         Domain::ArtificialIntelligence,
                         Language::Fortran, true, "548.exchange2_r", s));
    }
    {   // 657.xz_s: 4.2x the rate icount with a different mix; high
        // D-TLB sensitivity (Table IX).
        ProfileSpec s;
        s.icount_billions = 8264; s.load_pct = 13.34; s.store_pct = 4.73;
        s.branch_pct = 8.21; s.cpi = 1.00;
        s.data = D::Large; s.streaming = 0.1; s.code = C::Small;
        s.branches = B::VeryHard; s.taken_fraction = 0.48;
        s.tlb_stress = 0.55; s.mlp = 1.6;
        v.push_back(make(657, "657.xz_s", Category::SpeedInt,
                         Domain::Compression, Language::C, true,
                         "557.xz_r", s));
    }

    // =================================================================
    // SPECrate FP (Table I: 13 benchmarks)
    // =================================================================

    {   // 503.bwaves_r: blast-wave CFD; 0.8 GB footprint (far below the
        // speed run), loop-patterned branches whose capture depends on
        // the predictor — the "high branch sensitivity" pair of
        // Table IX.
        ProfileSpec s;
        s.icount_billions = 5488; s.load_pct = 34.92; s.store_pct = 4.77;
        s.branch_pct = 9.51; s.cpi = 0.42;
        s.fp_pct = 24.0; s.simd_pct = 14.0;
        s.data = D::Large; s.streaming = 0.7; s.code = C::Tiny;
        s.branches = B::Moderate; s.taken_fraction = 0.75;
        s.patterned_override = 0.95; s.tlb_stress = 0.30; s.mlp = 4.0;
        v.push_back(make(503, "503.bwaves_r", Category::RateFp,
                         Domain::FluidDynamics, Language::Fortran, false,
                         "603.bwaves_s", s));
    }
    {   // 507.cactuBSSN_r: numerical relativity; 43.6% loads, unique
        // memory + TLB behaviour, most distinct FP benchmark (Fig. 4).
        ProfileSpec s;
        s.icount_billions = 1322; s.load_pct = 43.62; s.store_pct = 9.53;
        s.branch_pct = 1.97; s.cpi = 0.69;
        s.fp_pct = 22.0; s.simd_pct = 8.0;
        s.data = D::L1Bound; s.streaming = 0.35; s.code = C::Flat;
        s.branches = B::VeryEasy; s.taken_fraction = 0.8;
        s.tlb_stress = 0.65; s.mlp = 3.0;
        v.push_back(make(507, "507.cactuBSSN_r", Category::RateFp,
                         Domain::Physics, Language::CCppFortran, true,
                         "607.cactuBSSN_s", s));
    }
    {   // 508.namd_r: molecular dynamics; compute-bound, tiny misses,
        // medium D-TLB sensitivity.
        ProfileSpec s;
        s.icount_billions = 2237; s.load_pct = 30.12; s.store_pct = 10.25;
        s.branch_pct = 1.75; s.cpi = 0.41;
        s.fp_pct = 34.0; s.simd_pct = 10.0;
        s.data = D::Small; s.streaming = 0.3; s.code = C::Small;
        s.branches = B::VeryEasy; s.taken_fraction = 0.8;
        s.tlb_stress = 0.10;
        v.push_back(make(508, "508.namd_r", Category::RateFp,
                         Domain::MolecularDynamics, Language::Cpp, false,
                         "", s));
    }
    {   // 510.parest_r: finite-element biomedical imaging solver.
        ProfileSpec s;
        s.icount_billions = 3461; s.load_pct = 29.51; s.store_pct = 2.50;
        s.branch_pct = 11.49; s.cpi = 0.48;
        s.fp_pct = 26.0; s.simd_pct = 6.0;
        s.data = D::Medium; s.streaming = 0.4; s.code = C::Medium;
        s.branches = B::Easy; s.taken_fraction = 0.7;
        v.push_back(make(510, "510.parest_r", Category::RateFp,
                         Domain::Biomedical, Language::Cpp, true, "", s));
    }
    {   // 511.povray_r: ray tracing; cache-resident scene with sparse
        // page-level texture lookups (high D-TLB sensitivity,
        // Table IX) and medium branch sensitivity.
        ProfileSpec s;
        s.icount_billions = 3310; s.load_pct = 30.30; s.store_pct = 13.13;
        s.branch_pct = 14.20; s.cpi = 0.42;
        s.fp_pct = 24.0; s.simd_pct = 4.0;
        s.data = D::Small; s.streaming = 0.1; s.code = C::Medium;
        s.branches = B::Easy; s.taken_fraction = 0.6;
        s.tlb_stress = 0.50;
        v.push_back(make(511, "511.povray_r", Category::RateFp,
                         Domain::Visualization, Language::CCpp, false,
                         "", s));
    }
    {   // 519.lbm_r: lattice Boltzmann; pure streaming stencil, almost
        // no branches, medium L1D sensitivity.
        ProfileSpec s;
        s.icount_billions = 1468; s.load_pct = 28.35; s.store_pct = 15.09;
        s.branch_pct = 1.05; s.cpi = 0.53;
        s.fp_pct = 30.0; s.simd_pct = 12.0;
        s.data = D::Large; s.streaming = 0.85; s.code = C::Tiny;
        s.branches = B::VeryEasy; s.taken_fraction = 0.85;
        s.mlp = 4.5;
        v.push_back(make(519, "519.lbm_r", Category::RateFp,
                         Domain::FluidDynamics, Language::C, false,
                         "619.lbm_s", s));
    }
    {   // 521.wrf_r: weather model; similar to its speed version.
        ProfileSpec s;
        s.icount_billions = 3197; s.load_pct = 22.94; s.store_pct = 5.93;
        s.branch_pct = 9.48; s.cpi = 0.81;
        s.fp_pct = 26.0; s.simd_pct = 8.0;
        s.data = D::Large; s.streaming = 0.5; s.code = C::Medium;
        s.branches = B::Easy; s.taken_fraction = 0.7;
        s.tlb_stress = 0.10; s.mlp = 2.5;
        v.push_back(make(521, "521.wrf_r", Category::RateFp,
                         Domain::Climatology, Language::CFortran, false,
                         "621.wrf_s", s));
    }
    {   // 526.blender_r: 3D rendering; dependency-stall dominated
        // (Fig. 1 "other" category), medium D-TLB sensitivity.
        ProfileSpec s;
        s.icount_billions = 5682; s.load_pct = 36.10; s.store_pct = 12.07;
        s.branch_pct = 7.89; s.cpi = 0.53;
        s.fp_pct = 20.0; s.simd_pct = 10.0;
        s.data = D::Medium; s.streaming = 0.3; s.code = C::Medium;
        s.branches = B::Easy; s.taken_fraction = 0.6;
        s.dependency_share = 0.40; s.tlb_stress = 0.15;
        v.push_back(make(526, "526.blender_r", Category::RateFp,
                         Domain::Visualization, Language::CCpp, true,
                         "", s));
    }
    {   // 527.cam4_r: atmosphere model; moderate everything, medium
        // branch sensitivity.
        ProfileSpec s;
        s.icount_billions = 2732; s.load_pct = 19.99; s.store_pct = 8.37;
        s.branch_pct = 11.06; s.cpi = 0.56;
        s.fp_pct = 24.0; s.simd_pct = 6.0;
        s.data = D::Medium; s.streaming = 0.4; s.code = C::Medium;
        s.branches = B::Easy; s.taken_fraction = 0.7;
        s.tlb_stress = 0.10;
        v.push_back(make(527, "527.cam4_r", Category::RateFp,
                         Domain::Climatology, Language::CFortran, true,
                         "627.cam4_s", s));
    }
    {   // 538.imagick_r: image manipulation; long FP dependency chains
        // dominate the CPI (Fig. 1), high core power (Fig. 12).
        ProfileSpec s;
        s.icount_billions = 4333; s.load_pct = 22.55; s.store_pct = 7.97;
        s.branch_pct = 10.94; s.cpi = 0.90;
        s.fp_pct = 30.0; s.simd_pct = 12.0;
        s.data = D::Medium; s.streaming = 0.5; s.code = C::Small;
        s.branches = B::Easy; s.taken_fraction = 0.7;
        s.dependency_share = 0.45;
        v.push_back(make(538, "538.imagick_r", Category::RateFp,
                         Domain::Visualization, Language::C, true,
                         "638.imagick_s", s));
    }
    {   // 544.nab_r: molecular modelling; FP-intensive, picked as a
        // subset representative (Table V).
        ProfileSpec s;
        s.icount_billions = 2024; s.load_pct = 23.70; s.store_pct = 7.46;
        s.branch_pct = 9.65; s.cpi = 0.69;
        s.fp_pct = 32.0; s.simd_pct = 8.0;
        s.data = D::Medium; s.streaming = 0.35; s.code = C::Small;
        s.branches = B::Easy; s.taken_fraction = 0.7;
        s.tlb_stress = 0.15; s.dependency_share = 0.25;
        v.push_back(make(544, "544.nab_r", Category::RateFp,
                         Domain::MolecularDynamics, Language::C, true,
                         "644.nab_s", s));
    }
    {   // 549.fotonik3d_r: electromagnetics stencil; streaming through a
        // huge grid — near the top of the FP L1D MPKI range (Table II)
        // and the "high L1D sensitivity" pair of Table IX.
        ProfileSpec s;
        s.icount_billions = 1288; s.load_pct = 39.12; s.store_pct = 12.07;
        s.branch_pct = 2.52; s.cpi = 0.96;
        s.fp_pct = 28.0; s.simd_pct = 10.0;
        s.data = D::L1Bound; s.streaming = 0.6; s.code = C::Tiny;
        s.branches = B::VeryEasy; s.taken_fraction = 0.85;
        s.tlb_stress = 0.30; s.mlp = 3.5;
        v.push_back(make(549, "549.fotonik3d_r", Category::RateFp,
                         Domain::Physics, Language::Fortran, true,
                         "649.fotonik3d_s", s));
    }
    {   // 554.roms_r: ocean model; streaming FP code, subset
        // representative in the speed category.
        ProfileSpec s;
        s.icount_billions = 2609; s.load_pct = 34.57; s.store_pct = 7.57;
        s.branch_pct = 6.73; s.cpi = 0.48;
        s.fp_pct = 28.0; s.simd_pct = 10.0;
        s.data = D::Large; s.streaming = 0.55; s.code = C::Small;
        s.branches = B::VeryEasy; s.taken_fraction = 0.8;
        s.mlp = 3.0;
        v.push_back(make(554, "554.roms_r", Category::RateFp,
                         Domain::Climatology, Language::Fortran, true,
                         "654.roms_s", s));
    }

    // =================================================================
    // SPECspeed FP (Table I: 10 benchmarks)
    // =================================================================

    {   // 603.bwaves_s: 12x the rate icount with a very large memory
        // footprint — cache behaviour significantly different from the
        // rate version (Sec. IV-D).
        ProfileSpec s;
        s.icount_billions = 66395; s.load_pct = 31.00; s.store_pct = 4.42;
        s.branch_pct = 13.00; s.cpi = 0.34;
        s.fp_pct = 24.0; s.simd_pct = 14.0;
        s.data = D::Huge; s.streaming = 0.75; s.code = C::Tiny;
        s.branches = B::Moderate; s.taken_fraction = 0.75;
        s.patterned_override = 0.95; s.tlb_stress = 0.40; s.mlp = 5.0;
        v.push_back(make(603, "603.bwaves_s", Category::SpeedFp,
                         Domain::FluidDynamics, Language::Fortran, false,
                         "503.bwaves_r", s));
    }
    {   // 607.cactuBSSN_s: like the rate version — unique memory/TLB
        // behaviour, subset representative (Table V).
        ProfileSpec s;
        s.icount_billions = 10976; s.load_pct = 43.87; s.store_pct = 9.50;
        s.branch_pct = 1.80; s.cpi = 0.68;
        s.fp_pct = 22.0; s.simd_pct = 8.0;
        s.data = D::L1Bound; s.streaming = 0.35; s.code = C::Flat;
        s.branches = B::VeryEasy; s.taken_fraction = 0.8;
        s.tlb_stress = 0.65; s.mlp = 3.0;
        v.push_back(make(607, "607.cactuBSSN_s", Category::SpeedFp,
                         Domain::Physics, Language::CCppFortran, true,
                         "507.cactuBSSN_r", s));
    }
    {   // 619.lbm_s: larger grid than the rate run; fluid-dynamics pairs
        // should both be used for domain coverage (Table VIII).
        ProfileSpec s;
        s.icount_billions = 4416; s.load_pct = 29.62; s.store_pct = 17.68;
        s.branch_pct = 1.40; s.cpi = 0.87;
        s.fp_pct = 30.0; s.simd_pct = 12.0;
        s.data = D::Huge; s.streaming = 0.9; s.code = C::Tiny;
        s.branches = B::VeryEasy; s.taken_fraction = 0.85;
        s.mlp = 4.0;
        v.push_back(make(619, "619.lbm_s", Category::SpeedFp,
                         Domain::FluidDynamics, Language::C, false,
                         "519.lbm_r", s));
    }
    {   // 621.wrf_s: similar to its rate version (Sec. IV-D); subset
        // representative (Table V).
        ProfileSpec s;
        s.icount_billions = 18524; s.load_pct = 23.20; s.store_pct = 5.80;
        s.branch_pct = 9.48; s.cpi = 0.77;
        s.fp_pct = 26.0; s.simd_pct = 8.0;
        s.data = D::Large; s.streaming = 0.5; s.code = C::Medium;
        s.branches = B::Easy; s.taken_fraction = 0.7;
        s.tlb_stress = 0.10; s.mlp = 2.5;
        v.push_back(make(621, "621.wrf_s", Category::SpeedFp,
                         Domain::Climatology, Language::CFortran, false,
                         "521.wrf_r", s));
    }
    {   // 627.cam4_s: similar to its rate version.
        ProfileSpec s;
        s.icount_billions = 15594; s.load_pct = 20.0; s.store_pct = 14.0;
        s.branch_pct = 10.92; s.cpi = 0.68;
        s.fp_pct = 24.0; s.simd_pct = 6.0;
        s.data = D::Medium; s.streaming = 0.4; s.code = C::Medium;
        s.branches = B::Easy; s.taken_fraction = 0.7;
        s.tlb_stress = 0.10;
        v.push_back(make(627, "627.cam4_s", Category::SpeedFp,
                         Domain::Climatology, Language::CFortran, true,
                         "527.cam4_r", s));
    }
    {   // 628.pop2_s: ocean circulation; speed-only benchmark.
        ProfileSpec s;
        s.icount_billions = 18611; s.load_pct = 21.71; s.store_pct = 8.41;
        s.branch_pct = 15.13; s.cpi = 0.48;
        s.fp_pct = 22.0; s.simd_pct = 6.0;
        s.data = D::Medium; s.streaming = 0.4; s.code = C::Medium;
        s.branches = B::Easy; s.taken_fraction = 0.7;
        s.tlb_stress = 0.05;
        v.push_back(make(628, "628.pop2_s", Category::SpeedFp,
                         Domain::Climatology, Language::CFortran, true,
                         "", s));
    }
    {   // 638.imagick_s: >= 30% higher misses at every cache level than
        // the rate version — the largest rate/speed linkage distance in
        // the suite (Sec. IV-D).
        ProfileSpec s;
        s.icount_billions = 66788; s.load_pct = 18.16; s.store_pct = 0.46;
        s.branch_pct = 9.30; s.cpi = 1.17;
        s.fp_pct = 32.0; s.simd_pct = 14.0;
        s.data = D::Huge; s.streaming = 0.35; s.code = C::Small;
        s.branches = B::Easy; s.taken_fraction = 0.7;
        s.dependency_share = 0.35;
        v.push_back(make(638, "638.imagick_s", Category::SpeedFp,
                         Domain::Visualization, Language::C, true,
                         "538.imagick_r", s));
    }
    {   // 644.nab_s: similar to its rate version.
        ProfileSpec s;
        s.icount_billions = 13489; s.load_pct = 23.49; s.store_pct = 7.51;
        s.branch_pct = 9.55; s.cpi = 0.68;
        s.fp_pct = 32.0; s.simd_pct = 8.0;
        s.data = D::Medium; s.streaming = 0.35; s.code = C::Small;
        s.branches = B::Easy; s.taken_fraction = 0.7;
        s.tlb_stress = 0.15; s.dependency_share = 0.25;
        v.push_back(make(644, "644.nab_s", Category::SpeedFp,
                         Domain::MolecularDynamics, Language::C, true,
                         "544.nab_r", s));
    }
    {   // 649.fotonik3d_s: much larger grid than the rate run (high
        // memory usage per Sec. IV-D); top of the FP L1D MPKI range and
        // highly L1D- and D-TLB-sensitive (Table IX).
        ProfileSpec s;
        s.icount_billions = 4280; s.load_pct = 33.99; s.store_pct = 13.89;
        s.branch_pct = 3.84; s.cpi = 0.78;
        s.fp_pct = 28.0; s.simd_pct = 10.0;
        s.data = D::L1Bound; s.streaming = 0.5; s.code = C::Tiny;
        s.branches = B::VeryEasy; s.taken_fraction = 0.85;
        s.tlb_stress = 0.40; s.mlp = 4.0;
        v.push_back(make(649, "649.fotonik3d_s", Category::SpeedFp,
                         Domain::Physics, Language::Fortran, true,
                         "549.fotonik3d_r", s));
    }
    {   // 654.roms_s: larger than the rate version; rate and speed both
        // needed for climatology coverage (Table VIII); subset
        // representative (Table V).
        ProfileSpec s;
        s.icount_billions = 22968; s.load_pct = 32.02; s.store_pct = 8.02;
        s.branch_pct = 7.53; s.cpi = 0.52;
        s.fp_pct = 28.0; s.simd_pct = 10.0;
        s.data = D::Huge; s.streaming = 0.65; s.code = C::Small;
        s.branches = B::VeryEasy; s.taken_fraction = 0.8;
        s.mlp = 3.2;
        v.push_back(make(654, "654.roms_s", Category::SpeedFp,
                         Domain::Climatology, Language::Fortran, true,
                         "554.roms_r", s));
    }

    return v;
}

} // namespace

const std::vector<BenchmarkInfo> &
spec2017()
{
    static const std::vector<BenchmarkInfo> suite = build();
    return suite;
}

std::vector<BenchmarkInfo>
spec2017SpeedInt()
{
    return filterByCategory(spec2017(), Category::SpeedInt);
}

std::vector<BenchmarkInfo>
spec2017RateInt()
{
    return filterByCategory(spec2017(), Category::RateInt);
}

std::vector<BenchmarkInfo>
spec2017SpeedFp()
{
    return filterByCategory(spec2017(), Category::SpeedFp);
}

std::vector<BenchmarkInfo>
spec2017RateFp()
{
    return filterByCategory(spec2017(), Category::RateFp);
}

const BenchmarkInfo &
spec2017Benchmark(const std::string &name)
{
    return findBenchmark(spec2017(), name);
}

} // namespace suites
} // namespace speclens
