/**
 * @file
 * Table IV machine configurations.
 *
 * Geometries follow the published table; predictors, latencies and
 * power coefficients are set to generation-appropriate values (a 2008
 * Harpertown Xeon gets a gshare-class predictor and no L3; Skylake
 * gets a TAGE-class predictor and a large second-level TLB).
 */

#include "machines.h"

#include <stdexcept>

namespace speclens {
namespace suites {

namespace {

using uarch::CacheConfig;
using uarch::Isa;
using uarch::MachineConfig;
using uarch::PredictorKind;
using uarch::ReplacementPolicy;
using uarch::TlbConfig;

constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * 1024;

MachineConfig
skylakeI76700()
{
    MachineConfig m;
    m.name = "Intel Core i7-6700";
    m.short_name = "skylake";
    m.isa = Isa::X86;
    m.frequency_ghz = 3.4;

    m.caches.l1i = {"L1I", 32 * kKiB, 8, 64, ReplacementPolicy::TreePlru};
    m.caches.l1d = {"L1D", 32 * kKiB, 8, 64, ReplacementPolicy::TreePlru};
    m.caches.l2 = {"L2", 256 * kKiB, 4, 64, ReplacementPolicy::Lru};
    m.caches.l3 = CacheConfig{"L3", 8 * kMiB, 16, 64,
                              ReplacementPolicy::Lru};

    m.tlbs.itlb = TlbConfig{"ITLB", 128, 8, 4096};
    m.tlbs.dtlb = TlbConfig{"DTLB", 64, 4, 4096};
    m.tlbs.l2tlb = TlbConfig{"STLB", 1536, 12, 4096};

    m.predictor = PredictorKind::TageLite;
    m.predictor_size_log2 = 12;

    m.latencies = {4.0, 22.0, 140.0, 15.0, 8.0, 5.0, 38.0};

    m.power.frequency_ghz = m.frequency_ghz;
    m.power.core_static_watts = 4.0;
    m.power.energy_per_instruction_nj = 0.45;

    m.transform = {1.0, 1.0, 1.0, 0.015};
    return m;
}

MachineConfig
broadwellE52650()
{
    MachineConfig m;
    m.name = "Intel Xeon E5-2650 v4";
    m.short_name = "broadwell";
    m.isa = Isa::X86;
    m.frequency_ghz = 2.2;

    m.caches.l1i = {"L1I", 32 * kKiB, 8, 64, ReplacementPolicy::TreePlru};
    m.caches.l1d = {"L1D", 32 * kKiB, 8, 64, ReplacementPolicy::TreePlru};
    m.caches.l2 = {"L2", 256 * kKiB, 8, 64, ReplacementPolicy::Lru};
    m.caches.l3 = CacheConfig{"L3", 30 * kMiB, 20, 64,
                              ReplacementPolicy::Lru};

    m.tlbs.itlb = TlbConfig{"ITLB", 128, 8, 4096};
    m.tlbs.dtlb = TlbConfig{"DTLB", 64, 4, 4096};
    m.tlbs.l2tlb = TlbConfig{"STLB", 1024, 8, 4096};

    m.predictor = PredictorKind::TageLite;
    m.predictor_size_log2 = 11;

    m.latencies = {4.0, 26.0, 150.0, 15.0, 8.0, 5.0, 42.0};

    m.power.frequency_ghz = m.frequency_ghz;
    m.power.core_static_watts = 5.0;
    m.power.energy_per_instruction_nj = 0.50;

    m.transform = {1.0, 1.0, 1.02, 0.02};
    return m;
}

MachineConfig
ivybridgeE52430()
{
    MachineConfig m;
    m.name = "Intel Xeon E5-2430 v2";
    m.short_name = "ivybridge";
    m.isa = Isa::X86;
    m.frequency_ghz = 2.5;

    m.caches.l1i = {"L1I", 32 * kKiB, 8, 64, ReplacementPolicy::TreePlru};
    m.caches.l1d = {"L1D", 32 * kKiB, 8, 64, ReplacementPolicy::TreePlru};
    m.caches.l2 = {"L2", 256 * kKiB, 8, 64, ReplacementPolicy::Lru};
    m.caches.l3 = CacheConfig{"L3", 15 * kMiB, 20, 64,
                              ReplacementPolicy::Lru};

    m.tlbs.itlb = TlbConfig{"ITLB", 128, 4, 4096};
    m.tlbs.dtlb = TlbConfig{"DTLB", 64, 4, 4096};
    m.tlbs.l2tlb = TlbConfig{"STLB", 512, 4, 4096};

    m.predictor = PredictorKind::Tournament;
    m.predictor_size_log2 = 13;

    m.latencies = {4.0, 24.0, 150.0, 14.0, 8.0, 5.0, 42.0};

    m.power.frequency_ghz = m.frequency_ghz;
    m.power.core_static_watts = 5.0;
    m.power.energy_per_instruction_nj = 0.55;

    m.transform = {1.0, 1.0, 1.02, 0.02};
    return m;
}

MachineConfig
harpertownE5405()
{
    MachineConfig m;
    m.name = "Intel Xeon E5405";
    m.short_name = "harpertown";
    m.isa = Isa::X86;
    m.frequency_ghz = 2.0;

    // Core2-era: big shared L2, no L3.
    m.caches.l1i = {"L1I", 32 * kKiB, 8, 64, ReplacementPolicy::Lru};
    m.caches.l1d = {"L1D", 32 * kKiB, 8, 64, ReplacementPolicy::Lru};
    m.caches.l2 = {"L2", 6 * kMiB, 24, 64, ReplacementPolicy::Lru};
    m.caches.l3.reset();

    m.tlbs.itlb = TlbConfig{"ITLB", 128, 4, 4096};
    m.tlbs.dtlb = TlbConfig{"DTLB", 256, 4, 4096};
    m.tlbs.l2tlb.reset(); // no second-level TLB

    m.predictor = PredictorKind::Gshare;
    m.predictor_size_log2 = 12;

    m.latencies = {6.0, 8.0, 180.0, 12.0, 10.0, 6.0, 65.0};

    m.power.frequency_ghz = m.frequency_ghz;
    m.power.core_static_watts = 8.0;
    m.power.energy_per_instruction_nj = 0.80;

    m.transform = {1.0, 1.0, 1.05, 0.025};
    return m;
}

MachineConfig
sparcIvPlus()
{
    MachineConfig m;
    m.name = "SPARC-IV+ v490";
    m.short_name = "sparc-iv";
    m.isa = Isa::Sparc;
    m.frequency_ghz = 2.1;

    m.caches.l1i = {"L1I", 64 * kKiB, 4, 64, ReplacementPolicy::Lru};
    m.caches.l1d = {"L1D", 64 * kKiB, 4, 64, ReplacementPolicy::Lru};
    m.caches.l2 = {"L2", 2 * kMiB, 4, 64, ReplacementPolicy::Lru};
    m.caches.l3 = CacheConfig{"L3", 32 * kMiB, 4, 64,
                              ReplacementPolicy::Lru};

    m.tlbs.itlb = TlbConfig{"ITLB", 64, 64, 8192};   // fully associative
    m.tlbs.dtlb = TlbConfig{"DTLB", 64, 64, 8192};   // fully associative
    m.tlbs.l2tlb = TlbConfig{"L2TLB", 1024, 2, 8192};

    m.predictor = PredictorKind::Gshare;
    m.predictor_size_log2 = 14;

    m.latencies = {6.0, 45.0, 200.0, 13.0, 10.0, 8.0, 70.0};

    m.power.frequency_ghz = m.frequency_ghz;
    m.power.core_static_watts = 12.0;
    m.power.energy_per_instruction_nj = 0.95;

    // RISC load/store ISA and a different compiler stack.
    m.transform = {0.90, 1.06, 1.20, 0.03};
    return m;
}

MachineConfig
sparcT4()
{
    MachineConfig m;
    m.name = "SPARC T4";
    m.short_name = "sparc-t4";
    m.isa = Isa::Sparc;
    m.frequency_ghz = 2.85;

    m.caches.l1i = {"L1I", 16 * kKiB, 4, 64, ReplacementPolicy::Lru};
    m.caches.l1d = {"L1D", 16 * kKiB, 4, 64, ReplacementPolicy::Lru};
    m.caches.l2 = {"L2", 128 * kKiB, 8, 64, ReplacementPolicy::Lru};
    m.caches.l3 = CacheConfig{"L3", 4 * kMiB, 16, 64,
                              ReplacementPolicy::Lru};

    m.tlbs.itlb = TlbConfig{"ITLB", 64, 64, 8192};
    m.tlbs.dtlb = TlbConfig{"DTLB", 128, 128, 8192};
    m.tlbs.l2tlb.reset(); // hardware tablewalk on L1 TLB miss

    m.predictor = PredictorKind::Tournament;
    m.predictor_size_log2 = 11;

    m.latencies = {5.0, 18.0, 170.0, 13.0, 7.0, 5.0, 50.0};

    m.power.frequency_ghz = m.frequency_ghz;
    m.power.core_static_watts = 7.0;
    m.power.energy_per_instruction_nj = 0.70;

    m.transform = {0.90, 1.06, 1.20, 0.03};
    return m;
}

MachineConfig
opteron2435()
{
    MachineConfig m;
    m.name = "AMD Opteron 2435";
    m.short_name = "opteron";
    m.isa = Isa::X86;
    m.frequency_ghz = 2.6;

    m.caches.l1i = {"L1I", 64 * kKiB, 2, 64, ReplacementPolicy::Lru};
    m.caches.l1d = {"L1D", 64 * kKiB, 2, 64, ReplacementPolicy::Lru};
    m.caches.l2 = {"L2", 512 * kKiB, 16, 64, ReplacementPolicy::Lru};
    m.caches.l3 = CacheConfig{"L3", 6 * kMiB, 48, 64,
                              ReplacementPolicy::Lru};

    m.tlbs.itlb = TlbConfig{"ITLB", 32, 32, 4096};   // fully associative
    m.tlbs.dtlb = TlbConfig{"DTLB", 48, 48, 4096};   // fully associative
    m.tlbs.l2tlb = TlbConfig{"L2TLB", 512, 4, 4096};

    m.predictor = PredictorKind::Tournament;
    m.predictor_size_log2 = 12;

    m.latencies = {5.0, 22.0, 170.0, 13.0, 9.0, 6.0, 55.0};

    m.power.frequency_ghz = m.frequency_ghz;
    m.power.core_static_watts = 9.0;
    m.power.energy_per_instruction_nj = 0.85;

    // Same ISA, different micro-architecture and compiler tuning.
    m.transform = {1.0, 1.0, 1.05, 0.025};
    return m;
}

} // namespace

const std::vector<uarch::MachineConfig> &
profilingMachines()
{
    static const std::vector<MachineConfig> machines = {
        skylakeI76700(), broadwellE52650(), ivybridgeE52430(),
        harpertownE5405(), sparcIvPlus(),   sparcT4(),
        opteron2435(),
    };
    return machines;
}

const uarch::MachineConfig &
skylakeMachine()
{
    return profilingMachines().front();
}

std::vector<uarch::MachineConfig>
powerMachines()
{
    const auto &all = profilingMachines();
    return {all[0], all[1], all[2]}; // Skylake, Broadwell, Ivy Bridge
}

std::vector<uarch::MachineConfig>
sensitivityMachines()
{
    const auto &all = profilingMachines();
    // Spread across generations and ISAs: Skylake, Harpertown,
    // SPARC T4 and Opteron give the widest structural contrast.
    return {all[0], all[3], all[5], all[6]};
}

std::vector<uarch::MachineConfig>
memoryCentricMachines()
{
    using uarch::PrefetcherKind;
    using uarch::WayPredictionKind;

    // All variants share the Skylake geometry so every metric delta
    // between them is attributable to the memory-centric features.
    auto variant = [](const char *name, const char *short_name,
                      PrefetcherKind kind, unsigned degree) {
        MachineConfig m = skylakeI76700();
        m.name = name;
        m.short_name = short_name;
        m.caches.prefetcher = kind;
        m.caches.l2_prefetch_degree = degree;
        m.caches.dram = uarch::DramConfig{};
        m.caches.l1d.way_prediction = WayPredictionKind::Mru;
        m.caches.l1i.way_prediction = WayPredictionKind::MultiMru;
        return m;
    };

    return {
        // Prefetcher off: the DRAM/way-prediction baseline the three
        // engines are measured against.
        variant("Skylake + DRAM model", "skylake-dram",
                PrefetcherKind::NextLine, 0),
        variant("Skylake + next-line prefetch", "skylake-nl",
                PrefetcherKind::NextLine, 4),
        variant("Skylake + stride prefetch", "skylake-stride",
                PrefetcherKind::Stride, 4),
        variant("Skylake + stream prefetch", "skylake-stream",
                PrefetcherKind::Stream, 4),
    };
}

const uarch::MachineConfig &
machineByShortName(const std::string &name)
{
    for (const MachineConfig &m : profilingMachines())
        if (m.short_name == name)
            return m;
    throw std::out_of_range("machineByShortName: unknown machine " + name);
}

} // namespace suites
} // namespace speclens
