/**
 * @file
 * The 43 SPEC CPU2017 benchmark workload models.
 *
 * Quantitative calibration comes from Table I of the paper (dynamic
 * instruction counts, load/store/branch mixes and Skylake CPI measured
 * by the authors); qualitative calibration (locality classes, branch
 * difficulty, TLB sparseness, dependency shares) encodes the behaviour
 * the paper reports throughout Sections II, IV and V.
 */

#ifndef SPECLENS_SUITES_SPEC2017_H
#define SPECLENS_SUITES_SPEC2017_H

#include <vector>

#include "suites/benchmark_info.h"

namespace speclens {
namespace suites {

/**
 * All 43 CPU2017 benchmarks in SPEC numbering order
 * (rate INT, speed INT, rate FP, speed FP interleaved by id).
 * The list is constructed once and cached.
 */
const std::vector<BenchmarkInfo> &spec2017();

/** The 10 SPECspeed INT benchmarks. */
std::vector<BenchmarkInfo> spec2017SpeedInt();

/** The 10 SPECrate INT benchmarks. */
std::vector<BenchmarkInfo> spec2017RateInt();

/** The 10 SPECspeed FP benchmarks. */
std::vector<BenchmarkInfo> spec2017SpeedFp();

/** The 13 SPECrate FP benchmarks. */
std::vector<BenchmarkInfo> spec2017RateFp();

/** Look up a CPU2017 benchmark by name. */
const BenchmarkInfo &spec2017Benchmark(const std::string &name);

} // namespace suites
} // namespace speclens

#endif // SPECLENS_SUITES_SPEC2017_H
