/**
 * @file
 * Per-benchmark input-set variants (Section IV-C, Figs. 7-8,
 * Table VII).
 *
 * Several CPU2017 benchmarks ship multiple reference inputs: perlbench,
 * gcc, x264 and xz in the INT categories and bwaves in FP.  A variant
 * is modelled as a deterministic perturbation of the base workload
 * model — input data changes working-set sizes and value-dependent
 * behaviour slightly, but (per the paper's finding for CPU2017) not
 * the fundamental character of the benchmark.  A `spread` parameter
 * controls the perturbation magnitude so the contrast case — CPU2006
 * gcc, whose inputs genuinely differed — can also be modelled.
 */

#ifndef SPECLENS_SUITES_INPUT_SETS_H
#define SPECLENS_SUITES_INPUT_SETS_H

#include <string>
#include <vector>

#include "suites/benchmark_info.h"

namespace speclens {
namespace suites {

/** One benchmark together with all its input-set variants. */
struct InputSetGroup
{
    /** Base benchmark. */
    BenchmarkInfo benchmark;

    /**
     * The variants, named "<benchmark>#<k>" (k starting at 1).  A
     * single-input benchmark has exactly one variant named after the
     * benchmark itself, matching the labelling convention of Fig. 7.
     */
    std::vector<BenchmarkInfo> inputs;
};

/**
 * Number of reference input sets of a CPU2017 benchmark (1 for
 * single-input benchmarks).  Counts follow the SPEC distribution:
 * gcc_r has five inputs, x264 three, and so on.
 */
int inputSetCount(const std::string &benchmark_name);

/** Perturbation magnitude used for CPU2017 inputs. */
constexpr double kCpu2017InputSpread = 0.10;

/** Perturbation magnitude modelling CPU2006 gcc's diverse inputs. */
constexpr double kCpu2006GccSpread = 0.60;

/**
 * Build the variant of @p benchmark for input set @p index (1-based).
 * Deterministic in (benchmark name, index).
 *
 * @param spread Relative magnitude of the working-set / mix / branch
 *        perturbations.
 */
BenchmarkInfo inputVariant(const BenchmarkInfo &benchmark, int index,
                           double spread = kCpu2017InputSpread);

/** Expand a benchmark into all its input variants. */
InputSetGroup expandInputSets(const BenchmarkInfo &benchmark,
                              double spread = kCpu2017InputSpread);

/** All CPU2017 INT benchmarks (rate + speed) with variants (Fig. 7). */
std::vector<InputSetGroup> inputSetGroupsInt();

/** All CPU2017 FP benchmarks (rate + speed) with variants (Fig. 8). */
std::vector<InputSetGroup> inputSetGroupsFp();

/** Flatten groups into one benchmark list for a similarity analysis. */
std::vector<BenchmarkInfo>
flattenGroups(const std::vector<InputSetGroup> &groups);

} // namespace suites
} // namespace speclens

#endif // SPECLENS_SUITES_INPUT_SETS_H
