/**
 * @file
 * The calibration preset tables behind buildProfile(), as constexpr
 * data with compile-time validation.
 *
 * Every qualitative knob of the ProfileSpec vocabulary (data-locality
 * class, code pressure, branch quality) expands through one row of
 * these tables.  Keeping the rows constexpr lets static_asserts prove
 * the invariants the lint rules check at runtime — mixture weights
 * summing to one, working sets growing hot to vast, probabilities in
 * range — for every preset at compile time: a typo in a calibration
 * row fails the build rather than skewing an analysis.
 */

#ifndef SPECLENS_SUITES_PRESET_TABLES_H
#define SPECLENS_SUITES_PRESET_TABLES_H

#include <cstddef>
#include <cstdint>

#include "suites/profile_presets.h"

namespace speclens {
namespace suites {

/** Number of components in the data working-set mixture. */
inline constexpr std::size_t kWorkingSetCount = 4;

/** One data-locality preset: the hot/mid/big/vast mixture. */
struct DataPresetRow
{
    DataLocality locality;
    double bytes[kWorkingSetCount];
    double weight[kWorkingSetCount];

    /** Per-set multiplier on the spec's streaming share. */
    double seq_scale[kWorkingSetCount];
};

/** One code-pressure preset, including the static branch population. */
struct CodePresetRow
{
    CodePressure pressure;
    double code_bytes;
    double hot_code_bytes;
    double code_locality;
    std::uint32_t static_branches;
};

/** One branch-quality preset. */
struct BranchPresetRow
{
    BranchQuality quality;
    double biased_fraction;
    double patterned_fraction;
};

namespace preset_tables {

inline constexpr double kKiB = 1024.0;
inline constexpr double kMiB = 1024.0 * 1024.0;

/**
 * The data-locality mixtures, calibrated against the Table II MPKI
 * ranges on the simulated Skylake: the mid / big / vast weights
 * approximate the fraction of memory accesses missing L1 / L2 / L3,
 * because each set is sized to be captured by the next level.  The
 * streaming multiplier applies to the mid and big sets, modelling the
 * L1-filtering effect of unit-stride loops.
 */
inline constexpr DataPresetRow kDataPresets[] = {
    {DataLocality::Resident,
     {8 * kKiB, 96 * kKiB, 1.5 * kMiB, 32 * kMiB},
     {0.9984, 0.0010, 0.0004, 0.0002},
     {0.3, 1.0, 1.0, 0.0}},
    {DataLocality::Small,
     {12 * kKiB, 112 * kKiB, 2 * kMiB, 48 * kMiB},
     {0.9862, 0.010, 0.003, 0.0008},
     {0.3, 1.0, 1.0, 0.0}},
    {DataLocality::Medium,
     {14 * kKiB, 128 * kKiB, 2.5 * kMiB, 64 * kMiB},
     {0.957, 0.031, 0.010, 0.002},
     {0.3, 1.0, 1.0, 0.0}},
    {DataLocality::Large,
     {16 * kKiB, 144 * kKiB, 3 * kMiB, 96 * kMiB},
     {0.914, 0.062, 0.020, 0.004},
     {0.3, 1.0, 1.0, 0.0}},
    {DataLocality::Huge,
     {16 * kKiB, 160 * kKiB, 3 * kMiB, 160 * kMiB},
     {0.860, 0.100, 0.032, 0.008},
     {0.3, 1.0, 1.0, 0.0}},
    {DataLocality::Extreme,
     {16 * kKiB, 160 * kKiB, 3.5 * kMiB, 320 * kMiB},
     {0.790, 0.150, 0.047, 0.013},
     {0.3, 1.0, 1.0, 0.0}},
    // FP stencil pattern (cactuBSSN, fotonik3d): enormous L1 miss
    // rate almost entirely captured by L2/L3 — the Table II shape of
    // L1D up to ~98 MPKI against L2D <= 8.6 and L3 <= 5.
    {DataLocality::L1Bound,
     {8 * kKiB, 144 * kKiB, 2 * kMiB, 256 * kMiB},
     {0.744, 0.240, 0.007, 0.009},
     {0.3, 1.0, 1.0, 0.0}},
};

/**
 * The code-pressure presets.  Locality values are calibrated against
 * the Table II L1I/L2I ranges: even front-end-heavy CPU2017
 * benchmarks stay below ~5 L1I MPKI on Skylake; only the server-class
 * Huge preset (Cassandra) escapes that envelope, as Section V-E
 * requires.  The static branch population scales with the footprint;
 * the dynamic stream is skewed toward low-numbered branches, so even
 * the Large population trains within a 4K-entry predictor.
 */
inline constexpr CodePresetRow kCodePresets[] = {
    {CodePressure::Tiny, 8 * kKiB, 2 * kKiB, 0.999, 64},
    {CodePressure::Small, 32 * kKiB, 4 * kKiB, 0.995, 192},
    {CodePressure::Medium, 96 * kKiB, 8 * kKiB, 0.99, 512},
    {CodePressure::Large, 224 * kKiB, 16 * kKiB, 0.978, 1536},
    // Generated straight-line code (cactuBSSN): the fetch stream
    // marches through a region somewhat larger than a typical L1I
    // with no hot loop.
    {CodePressure::Flat, 40 * kKiB, 40 * kKiB, 1.0, 256},
    {CodePressure::Huge, 2 * kMiB, 32 * kKiB, 0.88, 4096},
};

/** The branch-quality presets. */
inline constexpr BranchPresetRow kBranchPresets[] = {
    {BranchQuality::VeryEasy, 0.99, 0.7},
    {BranchQuality::Easy, 0.965, 0.7},
    {BranchQuality::Moderate, 0.93, 0.6},
    {BranchQuality::Hard, 0.87, 0.5},
    {BranchQuality::VeryHard, 0.82, 0.30},
};

// --------------------------------------------------------------------
// Compile-time validation.  These mirror lint rules SL002 (mix-sum),
// SL004 (working-set-shape), SL005 (code-model) and SL006
// (branch-model) for everything visible at compile time.
// --------------------------------------------------------------------

constexpr bool
inUnitInterval(double v)
{
    return v >= 0.0 && v <= 1.0;
}

constexpr bool
dataRowValid(const DataPresetRow &row)
{
    double total = 0.0;
    for (std::size_t i = 0; i < kWorkingSetCount; ++i) {
        if (row.bytes[i] < 64.0 || row.weight[i] <= 0.0 ||
            !inUnitInterval(row.seq_scale[i]))
            return false;
        if (i > 0 && row.bytes[i] <= row.bytes[i - 1])
            return false;
        total += row.weight[i];
    }
    double diff = total - 1.0;
    return (diff < 0.0 ? -diff : diff) < 1e-9;
}

constexpr bool
codeRowValid(const CodePresetRow &row)
{
    return row.code_bytes >= 64.0 && row.hot_code_bytes >= 64.0 &&
           row.hot_code_bytes <= row.code_bytes &&
           inUnitInterval(row.code_locality) &&
           row.static_branches >= 1 &&
           row.static_branches <= (1u << 20);
}

constexpr bool
branchRowValid(const BranchPresetRow &row)
{
    return inUnitInterval(row.biased_fraction) &&
           inUnitInterval(row.patterned_fraction);
}

template <typename Row, std::size_t N>
constexpr bool
allValid(const Row (&rows)[N], bool (*valid)(const Row &))
{
    for (const Row &row : rows)
        if (!valid(row))
            return false;
    return true;
}

static_assert(allValid(kDataPresets, dataRowValid),
              "a data-locality preset has weights not summing to 1, "
              "non-increasing set sizes, or an out-of-range field");
static_assert(allValid(kCodePresets, codeRowValid),
              "a code preset has hot code exceeding the footprint or "
              "an out-of-range field");
static_assert(allValid(kBranchPresets, branchRowValid),
              "a branch preset has a fraction outside [0, 1]");

static_assert(sizeof(kDataPresets) / sizeof(kDataPresets[0]) == 7,
              "one row per DataLocality value");
static_assert(sizeof(kCodePresets) / sizeof(kCodePresets[0]) == 6,
              "one row per CodePressure value");
static_assert(sizeof(kBranchPresets) / sizeof(kBranchPresets[0]) == 5,
              "one row per BranchQuality value");

} // namespace preset_tables

/**
 * Row for @p locality.  Falls back to the first row — unreachable for
 * valid enum values, which the lookup asserts at compile time when the
 * argument is a constant.
 */
constexpr const DataPresetRow &
dataPresetRow(DataLocality locality)
{
    for (const DataPresetRow &row : preset_tables::kDataPresets)
        if (row.locality == locality)
            return row;
    return preset_tables::kDataPresets[0];
}

/** Row for @p pressure. */
constexpr const CodePresetRow &
codePresetRow(CodePressure pressure)
{
    for (const CodePresetRow &row : preset_tables::kCodePresets)
        if (row.pressure == pressure)
            return row;
    return preset_tables::kCodePresets[0];
}

/** Row for @p quality. */
constexpr const BranchPresetRow &
branchPresetRow(BranchQuality quality)
{
    for (const BranchPresetRow &row : preset_tables::kBranchPresets)
        if (row.quality == quality)
            return row;
    return preset_tables::kBranchPresets[0];
}

} // namespace suites
} // namespace speclens

#endif // SPECLENS_SUITES_PRESET_TABLES_H
