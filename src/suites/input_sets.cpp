/**
 * @file
 * Input-set variant construction.
 */

#include "input_sets.h"

#include <algorithm>

#include "stats/rng.h"
#include "suites/spec2017.h"

namespace speclens {
namespace suites {

int
inputSetCount(const std::string &benchmark_name)
{
    // Reference-input counts of the SPEC CPU2017 distribution for the
    // multi-input benchmarks the paper analyses (Figs. 7-8).
    if (benchmark_name == "500.perlbench_r" ||
        benchmark_name == "600.perlbench_s") {
        return 3;
    }
    if (benchmark_name == "502.gcc_r")
        return 5;
    if (benchmark_name == "602.gcc_s")
        return 3;
    if (benchmark_name == "525.x264_r" || benchmark_name == "625.x264_s")
        return 3;
    if (benchmark_name == "557.xz_r")
        return 3;
    if (benchmark_name == "657.xz_s")
        return 2;
    if (benchmark_name == "503.bwaves_r")
        return 4;
    if (benchmark_name == "603.bwaves_s")
        return 2;
    return 1;
}

BenchmarkInfo
inputVariant(const BenchmarkInfo &benchmark, int index, double spread)
{
    BenchmarkInfo variant = benchmark;
    variant.name = benchmark.name + "#" + std::to_string(index);
    trace::WorkloadProfile &p = variant.profile;
    p.name = variant.name;

    // Deterministic perturbation stream for this (benchmark, input).
    stats::Rng rng(stats::combineSeeds(
        stats::hashName(benchmark.name),
        0x1257u + static_cast<std::uint64_t>(index)));

    auto scale = [&rng, spread](double value, double relative) {
        double factor = 1.0 + rng.gaussian(0.0, spread * relative);
        return value * std::clamp(factor, 0.3, 3.0);
    };

    // Input data primarily moves working-set sizes...
    for (trace::WorkingSet &ws : p.memory.data)
        ws.bytes = std::max(ws.stride_bytes, scale(ws.bytes, 1.0));
    p.memory.code_bytes = std::max(64.0, scale(p.memory.code_bytes, 0.3));
    p.memory.hot_code_bytes =
        std::min(p.memory.hot_code_bytes, p.memory.code_bytes);

    // ...shifts the mix a little...
    p.mix.load = std::clamp(scale(p.mix.load, 0.25), 0.0, 0.6);
    p.mix.store = std::clamp(scale(p.mix.store, 0.25), 0.0, 0.4);
    p.mix.branch = std::clamp(scale(p.mix.branch, 0.2), 0.005, 0.4);

    // ...and changes value-dependent branch behaviour slightly.
    p.branch.biased_fraction =
        std::clamp(scale(p.branch.biased_fraction, 0.1), 0.3, 0.995);
    p.branch.taken_fraction =
        std::clamp(scale(p.branch.taken_fraction, 0.1), 0.2, 0.9);

    // Different inputs also run for different lengths.
    p.dynamic_instructions_billions =
        scale(p.dynamic_instructions_billions, 0.5);

    p.validate();
    return variant;
}

InputSetGroup
expandInputSets(const BenchmarkInfo &benchmark, double spread)
{
    InputSetGroup group;
    group.benchmark = benchmark;
    int count = inputSetCount(benchmark.name);
    if (count <= 1) {
        group.inputs.push_back(benchmark);
        return group;
    }
    for (int k = 1; k <= count; ++k)
        group.inputs.push_back(inputVariant(benchmark, k, spread));
    return group;
}

namespace {

std::vector<InputSetGroup>
groupsFor(const std::vector<BenchmarkInfo> &benchmarks)
{
    std::vector<InputSetGroup> groups;
    groups.reserve(benchmarks.size());
    for (const BenchmarkInfo &b : benchmarks)
        groups.push_back(expandInputSets(b));
    return groups;
}

} // namespace

std::vector<InputSetGroup>
inputSetGroupsInt()
{
    std::vector<BenchmarkInfo> all = spec2017RateInt();
    for (const BenchmarkInfo &b : spec2017SpeedInt())
        all.push_back(b);
    return groupsFor(all);
}

std::vector<InputSetGroup>
inputSetGroupsFp()
{
    std::vector<BenchmarkInfo> all = spec2017RateFp();
    for (const BenchmarkInfo &b : spec2017SpeedFp())
        all.push_back(b);
    return groupsFor(all);
}

std::vector<BenchmarkInfo>
flattenGroups(const std::vector<InputSetGroup> &groups)
{
    std::vector<BenchmarkInfo> out;
    for (const InputSetGroup &g : groups)
        for (const BenchmarkInfo &b : g.inputs)
            out.push_back(b);
    return out;
}

} // namespace suites
} // namespace speclens
