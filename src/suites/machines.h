/**
 * @file
 * The seven profiling machines of Table IV, plus the machine subsets
 * used by specific analyses: the three Intel boxes with RAPL power
 * measurement (Section V-C) and the four machines of the sensitivity
 * study (Section V-G).
 */

#ifndef SPECLENS_SUITES_MACHINES_H
#define SPECLENS_SUITES_MACHINES_H

#include <string>
#include <vector>

#include "uarch/machine.h"

namespace speclens {
namespace suites {

/**
 * All seven Table IV machines:
 *
 * | Processor             | ISA   | L1     | L2    | LLC  |
 * |-----------------------|-------|--------|-------|------|
 * | Intel Core i7-6700    | x86   | 2x32KB | 256KB | 8MB  |
 * | Intel Xeon E5-2650 v4 | x86   | 2x32KB | 256KB | 30MB |
 * | Intel Xeon E5-2430 v2 | x86   | 2x32KB | 256KB | 15MB |
 * | Intel Xeon E5405      | x86   | 2x32KB | 6MB   | none |
 * | SPARC-IV+ v490        | SPARC | 2x64KB | 2MB   | 32MB |
 * | SPARC T4              | SPARC | 2x16KB | 128KB | 4MB  |
 * | AMD Opteron 2435      | x86   | 2x64KB | 512KB | 6MB  |
 */
const std::vector<uarch::MachineConfig> &profilingMachines();

/** The Skylake i7-6700 used for the Section II characterization. */
const uarch::MachineConfig &skylakeMachine();

/**
 * The three Intel machines (Skylake, Broadwell, Ivy Bridge) whose
 * RAPL-equivalent power model feeds the Fig. 12 analysis.
 */
std::vector<uarch::MachineConfig> powerMachines();

/** The four machines of the Table IX sensitivity classification. */
std::vector<uarch::MachineConfig> sensitivityMachines();

/**
 * Skylake-derived variants for the memory-centric analysis family:
 * a DRAM-only baseline (prefetcher off) plus one variant per
 * uarch::PrefetcherKind, each with the DRAM row-buffer model and cache
 * way prediction enabled.  Distinct short names ("skylake-dram",
 * "skylake-nl", "skylake-stride", "skylake-stream") keep manifests,
 * feature-matrix labels and store fingerprints separable.
 */
std::vector<uarch::MachineConfig> memoryCentricMachines();

/** Look up a machine by short name ("skylake", "sparc-t4", ...). */
const uarch::MachineConfig &machineByShortName(const std::string &name);

} // namespace suites
} // namespace speclens

#endif // SPECLENS_SUITES_MACHINES_H
