/**
 * @file
 * Synthetic stand-in for SPEC's published-results database.
 *
 * Section IV-B of the paper validates its subsets against the speedups
 * of commercial systems submitted to spec.org.  Those submissions are
 * not redistributable, so this module models a population of
 * commercial systems whose per-benchmark speedup over a reference
 * machine has the structure real submissions show: a system-wide base
 * factor (frequency/width), amplified or damped per benchmark by how
 * core-bound, memory-bound, FP-heavy and branch-limited that benchmark
 * is, plus submission noise.  Because the amplification terms derive
 * from the same workload models that drive the clustering features,
 * benchmarks that cluster together genuinely speed up together — the
 * property that makes representative subsets predictive and random
 * subsets risky, which is exactly the phenomenon Table VI measures.
 */

#ifndef SPECLENS_SUITES_SCORE_DATABASE_H
#define SPECLENS_SUITES_SCORE_DATABASE_H

#include <cstdint>
#include <string>
#include <vector>

#include "suites/benchmark_info.h"

namespace speclens {
namespace suites {

/** Behaviour summary of a workload used by the speedup model. */
struct WorkloadTraits
{
    double memory_intensity = 0.0; //!< [0,1]: footprint x memory mix.
    double fp_intensity = 0.0;     //!< [0,1]: FP + SIMD share.
    double branch_limit = 0.0;     //!< [0,1]: hard-branch exposure.
};

/** Derive speedup-model traits from a workload profile. */
WorkloadTraits deriveTraits(const trace::WorkloadProfile &profile);

/** One submitted commercial system. */
struct CommercialSystem
{
    std::string name;

    /** Log base speedup over the reference machine. */
    double log_base = 0.7;

    /** Extra log-speedup for fully core-bound benchmarks. */
    double core_gain = 0.5;

    /** Extra log-speedup for fully memory-bound benchmarks. */
    double memory_gain = 0.1;

    /** Extra log-speedup for FP/SIMD-heavy benchmarks. */
    double fp_gain = 0.2;

    /** Extra log-speedup for branch-limited benchmarks. */
    double branch_gain = 0.1;

    /** Std-dev of per-benchmark submission noise (log domain). */
    double noise_sigma = 0.04;
};

/** The synthetic published-results database. */
class ScoreDatabase
{
  public:
    /**
     * Build the system population.  The paper notes that few systems
     * had submitted results per category at the time; the defaults
     * give 4 systems for the speed categories and 5 for the rate
     * categories.
     */
    explicit ScoreDatabase(std::uint64_t seed = 2017);

    /** Systems with submissions for @p category. */
    const std::vector<CommercialSystem> &
    systemsFor(Category category) const;

    /**
     * Speedup of @p benchmark on @p system over the reference machine.
     * Deterministic per (system, benchmark) pair.
     */
    double speedup(const CommercialSystem &system,
                   const BenchmarkInfo &benchmark) const;

    /**
     * Suite score: geometric mean of the speedups of @p benchmarks on
     * @p system (the SPEC aggregate).
     */
    double suiteScore(const CommercialSystem &system,
                      const std::vector<BenchmarkInfo> &benchmarks) const;

  private:
    std::uint64_t seed_;
    std::vector<CommercialSystem> speed_systems_;
    std::vector<CommercialSystem> rate_systems_;
};

} // namespace suites
} // namespace speclens

#endif // SPECLENS_SUITES_SCORE_DATABASE_H
