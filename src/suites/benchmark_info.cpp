/**
 * @file
 * Benchmark metadata helpers.
 */

#include "benchmark_info.h"

#include <stdexcept>

namespace speclens {
namespace suites {

std::string
suiteName(Suite suite)
{
    switch (suite) {
      case Suite::Cpu2017: return "CPU2017";
      case Suite::Cpu2006: return "CPU2006";
      case Suite::Cpu2000: return "CPU2000";
      case Suite::Emerging: return "emerging";
    }
    return "unknown";
}

std::string
categoryName(Category category)
{
    switch (category) {
      case Category::SpeedInt: return "SPECspeed INT";
      case Category::RateInt: return "SPECrate INT";
      case Category::SpeedFp: return "SPECspeed FP";
      case Category::RateFp: return "SPECrate FP";
      case Category::Int: return "INT";
      case Category::Fp: return "FP";
      case Category::Other: return "other";
    }
    return "unknown";
}

std::string
domainName(Domain domain)
{
    switch (domain) {
      case Domain::Compiler: return "Compiler/Interpreter";
      case Domain::Compression: return "Compression";
      case Domain::ArtificialIntelligence: return "AI";
      case Domain::CombinatorialOptimization:
        return "Combinatorial optimization";
      case Domain::DiscreteEventSimulation: return "DE simulation";
      case Domain::DocumentProcessing: return "Doc processing";
      case Domain::Physics: return "Physics";
      case Domain::FluidDynamics: return "Fluid dynamics";
      case Domain::MolecularDynamics: return "Molecular dynamics";
      case Domain::Visualization: return "Visualization";
      case Domain::Biomedical: return "Biomedical";
      case Domain::Climatology: return "Climatology";
      case Domain::SpeechRecognition: return "Speech recognition";
      case Domain::LinearProgramming: return "Linear programming";
      case Domain::QuantumChemistry: return "Quantum chemistry";
      case Domain::Eda: return "EDA";
      case Domain::Database: return "Database";
      case Domain::GraphAnalytics: return "Graph analytics";
      case Domain::VideoProcessing: return "Video processing";
      case Domain::Other: return "Other";
    }
    return "unknown";
}

std::string
languageName(Language language)
{
    switch (language) {
      case Language::C: return "C";
      case Language::Cpp: return "C++";
      case Language::Fortran: return "Fortran";
      case Language::CFortran: return "C/Fortran";
      case Language::CCpp: return "C/C++";
      case Language::CCppFortran: return "C/C++/Fortran";
      case Language::Java: return "Java";
    }
    return "unknown";
}

bool
isCpu2017Category(Category category)
{
    return category == Category::SpeedInt || category == Category::RateInt ||
           category == Category::SpeedFp || category == Category::RateFp;
}

bool
isSpeedCategory(Category category)
{
    return category == Category::SpeedInt || category == Category::SpeedFp;
}

bool
isFpCategory(Category category)
{
    return category == Category::SpeedFp || category == Category::RateFp;
}

const BenchmarkInfo &
findBenchmark(const std::vector<BenchmarkInfo> &list, const std::string &name)
{
    for (const BenchmarkInfo &b : list)
        if (b.name == name)
            return b;
    throw std::out_of_range("findBenchmark: unknown benchmark " + name);
}

std::vector<BenchmarkInfo>
filterByCategory(const std::vector<BenchmarkInfo> &list, Category category)
{
    std::vector<BenchmarkInfo> out;
    for (const BenchmarkInfo &b : list)
        if (b.category == category)
            out.push_back(b);
    return out;
}

std::vector<std::string>
benchmarkNames(const std::vector<BenchmarkInfo> &list)
{
    std::vector<std::string> out;
    out.reserve(list.size());
    for (const BenchmarkInfo &b : list)
        out.push_back(b.name);
    return out;
}

} // namespace suites
} // namespace speclens
