/**
 * @file
 * SPEC CPU2006 benchmark workload models.
 *
 * Used by the balance analyses of Section V: the PC-space coverage
 * comparison (Fig. 11), the removed-domain coverage study (Section
 * V-B: only 429.mcf, 445.gobmk and 473.astar fall outside the CPU2017
 * envelope), and the power-spectrum comparison (Fig. 12).  Mix values
 * follow the published CPU2006 characterizations (Phansalkar et al.,
 * ISCA'07; the paper's reference [9]): CPU2006 INT averages ~20%
 * branches, notably above CPU2017's <= 15%.
 */

#ifndef SPECLENS_SUITES_SPEC2006_H
#define SPECLENS_SUITES_SPEC2006_H

#include <vector>

#include "suites/benchmark_info.h"

namespace speclens {
namespace suites {

/** All 29 CPU2006 benchmarks (12 INT + 17 FP). */
const std::vector<BenchmarkInfo> &spec2006();

/** The 12 CPU2006 integer benchmarks. */
std::vector<BenchmarkInfo> spec2006Int();

/** The 17 CPU2006 floating-point benchmarks. */
std::vector<BenchmarkInfo> spec2006Fp();

/** Look up a CPU2006 benchmark by name. */
const BenchmarkInfo &spec2006Benchmark(const std::string &name);

/**
 * CPU2006 benchmarks removed from (i.e. without a successor in)
 * CPU2017 — the set examined by the Section V-B coverage study.
 */
std::vector<BenchmarkInfo> spec2006RemovedBenchmarks();

} // namespace suites
} // namespace speclens

#endif // SPECLENS_SUITES_SPEC2006_H
