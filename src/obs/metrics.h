/**
 * @file
 * Low-overhead structured metrics: counters, gauges and timing spans.
 *
 * A measurement campaign should be able to explain itself: where
 * wall-time went (simulate vs. store I/O vs. PCA/clustering), how well
 * the thread pool was utilized, and why the artifact store rejected
 * entries.  This header is the single instrumentation substrate the
 * rest of SpecLens records into — the same measurement-first
 * discipline the paper applies to hardware, turned on the toolkit
 * itself.
 *
 * Three instrument kinds, all registered by dotted name in a global
 * Registry and exported together (obs/export.h):
 *
 *  - Counter: monotonically increasing u64 (events, bytes).
 *  - Gauge:   last-written double (utilization fractions, ratios).
 *  - Timing:  aggregate of recorded durations (count / total / min /
 *             max, nanoseconds on the monotonic clock), fed by the
 *             RAII Span.
 *
 * Overhead contract: one relaxed atomic op per counter bump and two
 * steady_clock reads per span, so instrumenting a path that simulates
 * even a few thousand instructions is noise (< 1%).  Hot call sites
 * cache the instrument reference in a function-local static, paying
 * the registry lookup once per process.
 *
 * Determinism contract: metrics NEVER touch stdout.  Exporters write
 * to files or stderr only, so the byte-identical-stdout guarantees of
 * the parallel engine and the artifact store hold with metrics on.
 *
 * Compile-time kill switch: configuring with -DSPECLENS_METRICS=OFF
 * defines SPECLENS_METRICS_OFF and compiles every mutation hook to a
 * no-op — instruments register nothing, snapshots are empty, spans
 * read no clocks.  The API surface is unchanged, so call sites need no
 * conditional compilation.
 */

#ifndef SPECLENS_OBS_METRICS_H
#define SPECLENS_OBS_METRICS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace speclens {
namespace obs {

/** True when the build records metrics (SPECLENS_METRICS=ON). */
#ifdef SPECLENS_METRICS_OFF
inline constexpr bool kMetricsEnabled = false;
#else
inline constexpr bool kMetricsEnabled = true;
#endif

/** Monotonic timestamp in nanoseconds (steady_clock). */
inline std::uint64_t
nowNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Monotonically increasing event counter. */
class Counter
{
  public:
    void
    add(std::uint64_t n = 1)
    {
#ifndef SPECLENS_METRICS_OFF
        value_.fetch_add(n, std::memory_order_relaxed);
#else
        (void)n;
#endif
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-written double value (stored as IEEE-754 bits). */
class Gauge
{
  public:
    void
    set(double v)
    {
#ifndef SPECLENS_METRICS_OFF
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof(bits));
        bits_.store(bits, std::memory_order_relaxed);
#else
        (void)v;
#endif
    }

    double
    value() const
    {
        std::uint64_t bits = bits_.load(std::memory_order_relaxed);
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    void reset() { bits_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> bits_{0};
};

/** Aggregate view of one Timing instrument. */
struct TimingStats
{
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
    std::uint64_t min_ns = 0; //!< 0 when count == 0.
    std::uint64_t max_ns = 0;
};

/** Duration aggregator (count / total / min / max, lock-free). */
class Timing
{
  public:
    void
    record(std::uint64_t ns)
    {
#ifndef SPECLENS_METRICS_OFF
        count_.fetch_add(1, std::memory_order_relaxed);
        total_.fetch_add(ns, std::memory_order_relaxed);
        std::uint64_t seen = min_.load(std::memory_order_relaxed);
        while (ns < seen &&
               !min_.compare_exchange_weak(seen, ns,
                                           std::memory_order_relaxed)) {
        }
        seen = max_.load(std::memory_order_relaxed);
        while (ns > seen &&
               !max_.compare_exchange_weak(seen, ns,
                                           std::memory_order_relaxed)) {
        }
#else
        (void)ns;
#endif
    }

    TimingStats
    stats() const
    {
        TimingStats out;
        out.count = count_.load(std::memory_order_relaxed);
        out.total_ns = total_.load(std::memory_order_relaxed);
        out.min_ns =
            out.count == 0 ? 0 : min_.load(std::memory_order_relaxed);
        out.max_ns = max_.load(std::memory_order_relaxed);
        return out;
    }

    void
    reset()
    {
        count_.store(0, std::memory_order_relaxed);
        total_.store(0, std::memory_order_relaxed);
        min_.store(UINT64_MAX, std::memory_order_relaxed);
        max_.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> total_{0};
    std::atomic<std::uint64_t> min_{UINT64_MAX};
    std::atomic<std::uint64_t> max_{0};
};

/**
 * Point-in-time copy of every registered instrument, sorted by name
 * within each kind (the registry map is ordered).  This is the unit
 * the exporters (obs/export.h) and the run manifest consume.
 */
struct Snapshot
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, TimingStats>> timings;

    bool
    empty() const
    {
        return counters.empty() && gauges.empty() && timings.empty();
    }
};

/**
 * Named instrument registry.
 *
 * Instruments are created on first lookup and live as long as the
 * registry, so returned references are stable — hot paths cache them
 * in function-local statics.  All methods are thread-safe.
 *
 * Most code uses the process-wide Registry::global(); tests build
 * private instances for deterministic golden-file snapshots.
 */
class Registry
{
  public:
    /** The instrument named @p name, created on first use. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Timing &timing(const std::string &name);

    /** Copy of every instrument's current value, sorted by name. */
    Snapshot snapshot() const;

    /** Zero every registered instrument (tests). */
    void reset();

    /** The process-wide registry all shipped instrumentation uses. */
    static Registry &global();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Timing>> timings_;
};

/**
 * RAII timing span: records the enclosed scope's wall time into a
 * Timing on destruction.  With metrics compiled out the constructor
 * and destructor are empty — no clock is read.
 *
 *   static obs::Timing &t =
 *       obs::Registry::global().timing("stats.pca.fit");
 *   obs::Span span(t);
 */
class Span
{
  public:
#ifndef SPECLENS_METRICS_OFF
    explicit Span(Timing &timing) : timing_(&timing), start_(nowNs()) {}
    ~Span() { timing_->record(nowNs() - start_); }
#else
    explicit Span(Timing &) {}
    ~Span() = default;
#endif

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
#ifndef SPECLENS_METRICS_OFF
    Timing *timing_;
    std::uint64_t start_;
#endif
};

} // namespace obs
} // namespace speclens

#endif // SPECLENS_OBS_METRICS_H
