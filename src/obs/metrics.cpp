/**
 * @file
 * Metrics registry implementation.
 */

#include "metrics.h"

namespace speclens {
namespace obs {

namespace {

/**
 * Generic create-on-first-lookup over one instrument map.  With
 * metrics compiled out nothing is registered: every lookup returns a
 * shared static dummy whose mutators are already no-ops, so disabled
 * builds carry no per-name allocations and export empty snapshots.
 */
template <typename T>
T &
lookup(std::mutex &mutex, std::map<std::string, std::unique_ptr<T>> &map,
       const std::string &name)
{
    if constexpr (!kMetricsEnabled) {
        (void)mutex;
        (void)map;
        (void)name;
        static T dummy;
        return dummy;
    } else {
        std::lock_guard<std::mutex> lock(mutex);
        std::unique_ptr<T> &slot = map[name];
        if (!slot)
            slot = std::make_unique<T>();
        return *slot;
    }
}

} // namespace

Counter &
Registry::counter(const std::string &name)
{
    return lookup(mutex_, counters_, name);
}

Gauge &
Registry::gauge(const std::string &name)
{
    return lookup(mutex_, gauges_, name);
}

Timing &
Registry::timing(const std::string &name)
{
    return lookup(mutex_, timings_, name);
}

Snapshot
Registry::snapshot() const
{
    Snapshot out;
    std::lock_guard<std::mutex> lock(mutex_);
    out.counters.reserve(counters_.size());
    for (const auto &[name, counter] : counters_)
        out.counters.emplace_back(name, counter->value());
    out.gauges.reserve(gauges_.size());
    for (const auto &[name, gauge] : gauges_)
        out.gauges.emplace_back(name, gauge->value());
    out.timings.reserve(timings_.size());
    for (const auto &[name, timing] : timings_)
        out.timings.emplace_back(name, timing->stats());
    return out;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, counter] : counters_)
        counter->reset();
    for (auto &[name, gauge] : gauges_)
        gauge->reset();
    for (auto &[name, timing] : timings_)
        timing->reset();
}

Registry &
Registry::global()
{
    // Function-local static: constructed on first use, so any
    // initialization-order race with other globals is impossible.
    static Registry registry;
    return registry;
}

} // namespace obs
} // namespace speclens
