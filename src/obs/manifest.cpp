/**
 * @file
 * Run-manifest renderer implementation.
 */

#include "manifest.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>
#include <system_error>
#include <thread>

#include "export.h"

namespace speclens {
namespace obs {

namespace {

/** JSON string literal (same escaping rules as the JSON exporter). */
std::string
quote(const std::string &text)
{
    std::string out = "\"";
    for (char c : text) {
        unsigned char u = static_cast<unsigned char>(c);
        if (c == '"')
            out += "\\\"";
        else if (c == '\\')
            out += "\\\\";
        else if (u < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x", u);
            out += buffer;
        } else {
            out.push_back(c);
        }
    }
    out.push_back('"');
    return out;
}

void
appendObject(
    std::string &out, const char *key,
    const std::vector<std::pair<std::string, std::string>> &fields)
{
    out += "  \"";
    out += key;
    out += "\": {";
    const char *sep = "";
    for (const auto &[name, value] : fields) {
        out += sep;
        out += "\n    " + quote(name) + ": " + quote(value);
        sep = ",";
    }
    out += fields.empty() ? "},\n" : "\n  },\n";
}

void
appendObject(
    std::string &out, const char *key,
    const std::vector<std::pair<std::string, std::uint64_t>> &fields)
{
    out += "  \"";
    out += key;
    out += "\": {";
    const char *sep = "";
    for (const auto &[name, value] : fields) {
        out += sep;
        out += "\n    " + quote(name) + ": " + std::to_string(value);
        sep = ",";
    }
    out += fields.empty() ? "},\n" : "\n  },\n";
}

/** The metrics snapshot JSON, indented one level into the manifest. */
std::string
indentedMetrics(const Snapshot &snapshot)
{
    std::string flat = renderJson(snapshot);
    std::string out;
    out.reserve(flat.size() + 64);
    for (std::size_t i = 0; i < flat.size(); ++i) {
        out.push_back(flat[i]);
        if (flat[i] == '\n' && i + 1 < flat.size())
            out += "  ";
    }
    // renderJson ends with "}\n"; drop the trailing newline so the
    // caller controls what follows.
    while (!out.empty() && out.back() == '\n')
        out.pop_back();
    return out;
}

} // namespace

std::string
renderManifest(const Manifest &manifest)
{
    std::string out = "{\n";
    out += "  \"manifest_version\": " +
           std::to_string(manifest.manifest_version) + ",\n";
    out += "  \"engine_version\": " +
           std::to_string(manifest.engine_version) + ",\n";
    out += "  \"config_fingerprint\": " +
           quote(manifest.config_fingerprint) + ",\n";
    appendObject(out, "run", manifest.run);
    appendObject(out, "totals", manifest.totals);
    appendObject(out, "rejected", manifest.rejected);
    out += "  \"metrics\": " + indentedMetrics(manifest.metrics) + "\n";
    out += "}\n";
    return out;
}

bool
writeManifest(const std::string &path, const Manifest &manifest)
{
    // Temp file + atomic rename, the artifact store's idiom: a reader
    // (or a SIGINT arriving mid-write) never observes a half-written
    // manifest — either the previous one survives or the new one is
    // complete.  Orphaned `run-manifest.json.tmp*` files a killed
    // process leaves behind are swept when the store is next opened.
    std::string rendered = renderManifest(manifest);
    std::string temp =
        path + ".tmp" +
        std::to_string(
            std::hash<std::thread::id>{}(std::this_thread::get_id()));
    {
        std::ofstream file(temp, std::ios::binary | std::ios::trunc);
        if (file)
            file.write(rendered.data(),
                       static_cast<std::streamsize>(rendered.size()));
        if (!file) {
            std::fprintf(
                stderr,
                "[speclens-obs] warning: cannot write manifest to "
                "%s\n",
                path.c_str());
            return false;
        }
    }
    std::error_code ec;
    std::filesystem::rename(temp, path, ec);
    if (ec) {
        std::filesystem::remove(temp, ec);
        std::fprintf(stderr,
                     "[speclens-obs] warning: cannot write manifest to "
                     "%s\n",
                     path.c_str());
        return false;
    }
    return true;
}

} // namespace obs
} // namespace speclens
