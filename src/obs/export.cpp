/**
 * @file
 * Metric exporter implementation.
 */

#include "export.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <stdexcept>

namespace speclens {
namespace obs {

namespace {

/** Prometheus metric name: `speclens_` + name with [^a-zA-Z0-9_] -> '_'. */
std::string
promName(const std::string &name)
{
    std::string out = "speclens_";
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_';
        out.push_back(ok ? c : '_');
    }
    return out;
}

/** JSON-format a double; non-finite values degrade to 0 (JSON has no inf/nan). */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        v = 0.0;
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", v);
    return buffer;
}

/** JSON string literal with escapes for ", \ and control characters. */
std::string
jsonString(const std::string &text)
{
    std::string out = "\"";
    for (char c : text) {
        unsigned char u = static_cast<unsigned char>(c);
        if (c == '"')
            out += "\\\"";
        else if (c == '\\')
            out += "\\\\";
        else if (u < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x", u);
            out += buffer;
        } else {
            out.push_back(c);
        }
    }
    out.push_back('"');
    return out;
}

void
promLine(std::string &out, const std::string &name, const char *type,
         const std::string &value)
{
    out += "# TYPE " + name + " " + type + "\n";
    out += name + " " + value + "\n";
}

} // namespace

ExportFormat
exportFormatFromName(const std::string &name)
{
    if (name == "prom" || name == "prometheus")
        return ExportFormat::Prometheus;
    if (name == "json")
        return ExportFormat::Json;
    throw std::invalid_argument(
        "unknown metrics format '" + name +
        "' (expected prom, prometheus or json)");
}

std::string
renderPrometheus(const Snapshot &snapshot)
{
    std::string out;
    for (const auto &[name, value] : snapshot.counters) {
        promLine(out, promName(name) + "_total", "counter",
                 std::to_string(value));
    }
    for (const auto &[name, value] : snapshot.gauges)
        promLine(out, promName(name), "gauge", jsonNumber(value));
    for (const auto &[name, stats] : snapshot.timings) {
        std::string base = promName(name);
        promLine(out, base + "_count", "counter",
                 std::to_string(stats.count));
        promLine(out, base + "_total_ns", "counter",
                 std::to_string(stats.total_ns));
        promLine(out, base + "_min_ns", "gauge",
                 std::to_string(stats.min_ns));
        promLine(out, base + "_max_ns", "gauge",
                 std::to_string(stats.max_ns));
    }
    return out;
}

std::string
renderJson(const Snapshot &snapshot)
{
    std::string out = "{\n  \"counters\": {";
    const char *sep = "";
    for (const auto &[name, value] : snapshot.counters) {
        out += sep;
        out += "\n    " + jsonString(name) + ": " + std::to_string(value);
        sep = ",";
    }
    out += snapshot.counters.empty() ? "},\n" : "\n  },\n";

    out += "  \"gauges\": {";
    sep = "";
    for (const auto &[name, value] : snapshot.gauges) {
        out += sep;
        out += "\n    " + jsonString(name) + ": " + jsonNumber(value);
        sep = ",";
    }
    out += snapshot.gauges.empty() ? "},\n" : "\n  },\n";

    out += "  \"timings\": {";
    sep = "";
    for (const auto &[name, stats] : snapshot.timings) {
        out += sep;
        out += "\n    " + jsonString(name) + ": {\"count\": " +
               std::to_string(stats.count) +
               ", \"total_ns\": " + std::to_string(stats.total_ns) +
               ", \"min_ns\": " + std::to_string(stats.min_ns) +
               ", \"max_ns\": " + std::to_string(stats.max_ns) + "}";
        sep = ",";
    }
    out += snapshot.timings.empty() ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

bool
writeMetricsFile(const std::string &path, ExportFormat format,
                 const Registry &registry)
{
    Snapshot snapshot = registry.snapshot();
    std::string rendered = format == ExportFormat::Json
                               ? renderJson(snapshot)
                               : renderPrometheus(snapshot);
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    if (file)
        file.write(rendered.data(),
                   static_cast<std::streamsize>(rendered.size()));
    if (!file) {
        std::fprintf(stderr,
                     "[speclens-obs] warning: cannot write metrics to "
                     "%s\n",
                     path.c_str());
        return false;
    }
    return true;
}

namespace {

// Destination of the at-exit export.  Plain globals guarded by a
// mutex: exportAtExit may be called from option parsing in any thread,
// the atexit hook runs once on the main thread.
std::mutex g_export_mutex;
std::string g_export_path;
ExportFormat g_export_format = ExportFormat::Prometheus;

void
exportAtExitHook()
{
    std::string path;
    ExportFormat format;
    {
        std::lock_guard<std::mutex> lock(g_export_mutex);
        path = g_export_path;
        format = g_export_format;
    }
    if (!path.empty())
        writeMetricsFile(path, format);
}

} // namespace

void
exportAtExit(std::string path, ExportFormat format)
{
    // Touch the global registry first: statics destruct in reverse
    // construction order, so constructing it before registering the
    // hook guarantees the hook runs while the registry is alive.
    Registry::global();
    {
        std::lock_guard<std::mutex> lock(g_export_mutex);
        g_export_path = std::move(path);
        g_export_format = format;
    }
    static bool registered = (std::atexit(exportAtExitHook), true);
    (void)registered;
}

// ====================================================================
// Minimal JSON well-formedness checker (RFC 8259 syntax).
// ====================================================================

namespace {

class JsonScanner
{
  public:
    explicit JsonScanner(const std::string &text) : text_(text) {}

    bool
    valid()
    {
        skipWs();
        if (!value(0))
            return false;
        skipWs();
        return position_ == text_.size();
    }

  private:
    static constexpr int kMaxDepth = 64;

    bool
    value(int depth)
    {
        if (depth > kMaxDepth)
            return false;
        if (position_ >= text_.size())
            return false;
        char c = text_[position_];
        if (c == '{')
            return object(depth);
        if (c == '[')
            return array(depth);
        if (c == '"')
            return string();
        if (c == 't')
            return literal("true");
        if (c == 'f')
            return literal("false");
        if (c == 'n')
            return literal("null");
        return number();
    }

    bool
    object(int depth)
    {
        ++position_; // '{'
        skipWs();
        if (eat('}'))
            return true;
        for (;;) {
            skipWs();
            if (!string())
                return false;
            skipWs();
            if (!eat(':'))
                return false;
            skipWs();
            if (!value(depth + 1))
                return false;
            skipWs();
            if (eat(','))
                continue;
            return eat('}');
        }
    }

    bool
    array(int depth)
    {
        ++position_; // '['
        skipWs();
        if (eat(']'))
            return true;
        for (;;) {
            skipWs();
            if (!value(depth + 1))
                return false;
            skipWs();
            if (eat(','))
                continue;
            return eat(']');
        }
    }

    bool
    string()
    {
        if (!eat('"'))
            return false;
        while (position_ < text_.size()) {
            unsigned char c =
                static_cast<unsigned char>(text_[position_]);
            if (c == '"') {
                ++position_;
                return true;
            }
            if (c < 0x20)
                return false; // Raw control character.
            if (c == '\\') {
                ++position_;
                if (position_ >= text_.size())
                    return false;
                char e = text_[position_];
                if (e == 'u') {
                    for (int k = 1; k <= 4; ++k) {
                        if (position_ + k >= text_.size() ||
                            !std::isxdigit(static_cast<unsigned char>(
                                text_[position_ + k])))
                            return false;
                    }
                    position_ += 4;
                } else if (!std::strchr("\"\\/bfnrt", e)) {
                    return false;
                }
            }
            ++position_;
        }
        return false; // Unterminated.
    }

    bool
    number()
    {
        std::size_t start = position_;
        eat('-');
        if (!digits())
            return false;
        if (eat('.') && !digits())
            return false;
        if (position_ < text_.size() &&
            (text_[position_] == 'e' || text_[position_] == 'E')) {
            ++position_;
            if (position_ < text_.size() &&
                (text_[position_] == '+' || text_[position_] == '-'))
                ++position_;
            if (!digits())
                return false;
        }
        return position_ > start;
    }

    bool
    digits()
    {
        std::size_t start = position_;
        while (position_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[position_])))
            ++position_;
        return position_ > start;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::strlen(word);
        if (text_.compare(position_, n, word) != 0)
            return false;
        position_ += n;
        return true;
    }

    bool
    eat(char c)
    {
        if (position_ < text_.size() && text_[position_] == c) {
            ++position_;
            return true;
        }
        return false;
    }

    void
    skipWs()
    {
        while (position_ < text_.size() &&
               (text_[position_] == ' ' || text_[position_] == '\t' ||
                text_[position_] == '\n' || text_[position_] == '\r'))
            ++position_;
    }

    const std::string &text_;
    std::size_t position_ = 0;
};

} // namespace

bool
validateJson(const std::string &text)
{
    return JsonScanner(text).valid();
}

} // namespace obs
} // namespace speclens
