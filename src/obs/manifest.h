/**
 * @file
 * Per-run manifest: a diffable JSON record of one campaign run.
 *
 * A campaign that leaves artifacts behind (the `--store` cache) should
 * also leave a record of the run that produced or replayed them.  The
 * manifest captures what made the run what it was — engine version and
 * configuration fingerprint — and what happened: store totals, the
 * rejected-entry breakdown (corrupt / stale-version /
 * fingerprint-mismatch / orphaned-temp) and a full metric snapshot.
 * Warm and cold runs over the same store are then diffable: identical
 * identity block, different hit/simulation totals.
 *
 * The schema (version 1):
 *
 *   {
 *     "manifest_version": 1,
 *     "engine_version": <u64>,
 *     "config_fingerprint": "<16-hex>",
 *     "run": { "<key>": "<string>", ... },
 *     "totals": { "<key>": <u64>, ... },
 *     "rejected": { "<class>": <u64>, ... },
 *     "metrics": { "counters": ..., "gauges": ..., "timings": ... }
 *   }
 *
 * The writer lives in obs so it stays dependency-free; the session
 * layer (core/analysis_session.cpp) fills the fields and writes the
 * file next to the store as kManifestFileName.
 */

#ifndef SPECLENS_OBS_MANIFEST_H
#define SPECLENS_OBS_MANIFEST_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace speclens {
namespace obs {

/** File name of the manifest within a store directory. */
constexpr const char *kManifestFileName = "run-manifest.json";

/** Everything one run manifest records. */
struct Manifest
{
    std::uint64_t manifest_version = 1;

    /** Simulation-engine version (core::kStoreEngineVersion). */
    std::uint64_t engine_version = 0;

    /** 16-hex fingerprint of the run configuration. */
    std::string config_fingerprint;

    /** Descriptive string fields (store directory, ...). */
    std::vector<std::pair<std::string, std::string>> run;

    /** Numeric totals (entries, hits, misses, saves, simulations). */
    std::vector<std::pair<std::string, std::uint64_t>> totals;

    /** Rejected-entry breakdown by defect class. */
    std::vector<std::pair<std::string, std::uint64_t>> rejected;

    /** Metric snapshot at the end of the run. */
    Snapshot metrics;
};

/** Render @p manifest as its canonical JSON document. */
std::string renderManifest(const Manifest &manifest);

/**
 * Render and write @p manifest to @p path.  Returns false on I/O
 * failure (reported to stderr; a manifest must never take a run
 * down).
 */
bool writeManifest(const std::string &path, const Manifest &manifest);

} // namespace obs
} // namespace speclens

#endif // SPECLENS_OBS_MANIFEST_H
