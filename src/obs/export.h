/**
 * @file
 * Metric snapshot exporters: Prometheus text format and JSON.
 *
 * Both renderers are pure functions of a Snapshot, so their output is
 * deterministic for a deterministic registry state — the golden-file
 * tests compare exact bytes.  writeMetricsFile()/exportAtExit() wire
 * them to the `--metrics FILE` option of the CLI and every bench
 * binary; all output goes to the named file (never stdout), so the
 * byte-identical-stdout contracts hold with metrics enabled.
 *
 * validateJson() is a dependency-free JSON *syntax* checker used by
 * the exporter tests and by `speclens campaign manifest` to prove the
 * emitted documents parse — it validates well-formedness, not schema.
 */

#ifndef SPECLENS_OBS_EXPORT_H
#define SPECLENS_OBS_EXPORT_H

#include <string>

#include "obs/metrics.h"

namespace speclens {
namespace obs {

/** Metric export format. */
enum class ExportFormat {
    Prometheus, //!< Prometheus text exposition format.
    Json,       //!< Single JSON document.
};

/**
 * Format from its CLI name ("prom" | "prometheus" | "json").
 * @throws std::invalid_argument on anything else.
 */
ExportFormat exportFormatFromName(const std::string &name);

/**
 * Render @p snapshot in the Prometheus text exposition format.
 * Dotted instrument names become `speclens_`-prefixed underscore
 * names; each Timing exports `_count`, `_total_ns`, `_min_ns` and
 * `_max_ns` series.
 */
std::string renderPrometheus(const Snapshot &snapshot);

/**
 * Render @p snapshot as one JSON object with "counters", "gauges" and
 * "timings" members keyed by the original dotted names.
 */
std::string renderJson(const Snapshot &snapshot);

/**
 * Snapshot @p registry (default: the global one) and write it to
 * @p path in @p format.  Returns false on I/O failure (reported to
 * stderr; metrics must never take a run down).
 */
bool writeMetricsFile(const std::string &path, ExportFormat format,
                      const Registry &registry = Registry::global());

/**
 * Arrange for writeMetricsFile(@p path, @p format) to run at process
 * exit — the single hook behind `--metrics FILE`, shared by the CLI
 * and all bench binaries regardless of how their main() is shaped.
 * Calling it again replaces the destination; the snapshot is taken at
 * exit time.
 */
void exportAtExit(std::string path, ExportFormat format);

/**
 * True when @p text is one complete, well-formed JSON value (RFC 8259
 * syntax; no schema checks).  Depth-limited against stack abuse.
 */
bool validateJson(const std::string &text);

} // namespace obs
} // namespace speclens

#endif // SPECLENS_OBS_EXPORT_H
