/**
 * @file
 * Blocking client for the speclens serve protocol.
 *
 * Used by `speclens query`, the serve load-test harness and the
 * end-to-end tests.  One Client is one connection; call() frames the
 * request, sends it and blocks for the response frame.  Not
 * thread-safe — use one Client per thread.
 */

#ifndef SPECLENS_SERVE_CLIENT_H
#define SPECLENS_SERVE_CLIENT_H

#include <cstdint>
#include <string>

#include "serve/protocol.h"

namespace speclens {
namespace serve {

/** One connection to a serve daemon (see file comment). */
class Client
{
  public:
    Client() = default;

    Client(const Client &) = delete;
    Client &operator=(const Client &) = delete;

    ~Client();

    /**
     * Connect to @p host:@p port.  False (with @p error set) on
     * failure.  @p host must be a numeric IPv4 address.
     */
    bool connect(const std::string &host, std::uint16_t port,
                 std::string *error);

    /** True between a successful connect() and close()/failure. */
    bool connected() const { return fd_ >= 0; }

    /**
     * Send @p request and block for the response.  False (with
     * @p error set) on transport failure — the connection is closed
     * and must be re-established.  A rejected query is NOT a
     * transport failure: call() returns true with response.ok false.
     */
    bool call(const Request &request, Response *response,
              std::string *error);

    void close();

  private:
    int fd_ = -1;
};

} // namespace serve
} // namespace speclens

#endif // SPECLENS_SERVE_CLIENT_H
