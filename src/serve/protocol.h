/**
 * @file
 * Wire protocol of the speclens serve daemon.
 *
 * A connection carries a sequence of length-prefixed JSON frames in
 * each direction:
 *
 *     +----------------+----------------------+
 *     | 4-byte length  |  JSON payload        |
 *     | (big-endian)   |  (UTF-8, no NUL)     |
 *     +----------------+----------------------+
 *
 * Requests are flat JSON objects:
 *
 *     {"op": "characterize", "benchmarks": ["505.mcf_r", "557.xz_r"]}
 *     {"op": "memory", "benchmarks": ["505.mcf_r"]}
 *     {"op": "subset", "category": "rate-int", "k": 3}
 *     {"op": "sensitivity", "metric": "branch"}
 *     {"op": "stats"}
 *     {"op": "shutdown"}
 *
 * Responses are `{"ok": bool, "output": string, "error": string}`
 * where `output` is byte-identical to what the batch CLI prints on
 * stdout for the same query (the serve-smoke check `cmp`s the two).
 *
 * The codec is dependency-free: the encoder writes exactly the shapes
 * above and the decoder accepts any flat JSON object whose values are
 * strings, unsigned integers, booleans or arrays of strings — enough
 * for this protocol, and strict about everything else.
 */

#ifndef SPECLENS_SERVE_PROTOCOL_H
#define SPECLENS_SERVE_PROTOCOL_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace speclens {
namespace serve {

/** Frames above this size are rejected (16 MiB, both directions). */
inline constexpr std::size_t kMaxFrameBytes = 16u << 20;

/** Request operation. */
enum class Op {
    Characterize, //!< Per-machine metric tables for named benchmarks.
    Memory,       //!< Memory-centric tables (prefetch/way-pred/DRAM).
    Subset,       //!< Representative subset of a CPU2017 category.
    Sensitivity,  //!< Table IX-style sensitivity classes.
    Stats,        //!< Server / store / dedup counters.
    Shutdown,     //!< Graceful drain: finish in-flight work, then exit.
};

/** Wire name of @p op ("characterize", ...). */
std::string opName(Op op);

/** Parse a wire name; returns false on an unknown op. */
bool opFromName(const std::string &name, Op &op);

/** One request frame. */
struct Request
{
    Op op = Op::Stats;

    /** characterize / memory: benchmark names (registry lookup). */
    std::vector<std::string> benchmarks;

    /** subset: category name (speed-int / rate-int / ...). */
    std::string category;

    /** subset: number of representatives. */
    std::size_t k = 3;

    /** sensitivity: metric name (branch / l1d / dtlb). */
    std::string metric;
};

/** One response frame. */
struct Response
{
    bool ok = false;

    /** Rendered report; byte-identical to the batch CLI's stdout. */
    std::string output;

    /** Rejection reason when !ok (no trailing newline). */
    std::string error;
};

/** JSON string literal with escaping (control chars as \\u00XX). */
std::string jsonQuote(const std::string &text);

/** Encode @p request as a flat JSON object (no frame header). */
std::string encodeRequest(const Request &request);

/** Encode @p response as a flat JSON object (no frame header). */
std::string encodeResponse(const Response &response);

/**
 * Decode a request payload; returns false (and sets @p error) on
 * malformed JSON or an unknown op.
 */
bool decodeRequest(const std::string &payload, Request &request,
                   std::string &error);

/** Decode a response payload; returns false on malformed JSON. */
bool decodeResponse(const std::string &payload, Response &response,
                    std::string &error);

/** Result of reading one frame from a socket. */
enum class FrameStatus {
    Ok,       //!< Payload filled.
    Eof,      //!< Clean close before a header byte arrived.
    Error,    //!< Socket error or mid-frame close.
    TooLarge, //!< Declared length exceeds the limit.
};

/**
 * Read one length-prefixed frame from @p fd into @p payload.
 * Blocks until a full frame (or EOF/error) arrives.
 */
FrameStatus readFrame(int fd, std::string &payload,
                      std::size_t max_bytes = kMaxFrameBytes);

/** Write one length-prefixed frame; false on error or oversize. */
bool writeFrame(int fd, const std::string &payload);

} // namespace serve
} // namespace speclens

#endif // SPECLENS_SERVE_PROTOCOL_H
