/**
 * @file
 * Wire-protocol implementation: flat-JSON codec and frame I/O.
 */

#include "protocol.h"

#include <sys/socket.h>
#include <sys/types.h>

#include <cerrno>
#include <cstdio>
#include <map>

namespace speclens {
namespace serve {

namespace {

// ----- Flat JSON parsing ----------------------------------------------
//
// The protocol needs no general JSON library: requests and responses
// are single-level objects whose values are strings, unsigned
// integers, booleans or arrays of strings.  The parser below accepts
// exactly that grammar (with arbitrary whitespace) and rejects
// everything else, which doubles as input validation for the server.

/** One parsed value. */
struct JsonValue
{
    enum class Kind { String, Number, Bool, Array } kind = Kind::String;
    std::string str;
    std::uint64_t num = 0;
    bool flag = false;
    std::vector<std::string> items;
};

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    /** Parse the whole payload as one flat object. */
    bool parseObject(std::map<std::string, JsonValue> &fields)
    {
        skipSpace();
        if (!consume('{'))
            return false;
        skipSpace();
        if (consume('}'))
            return atEnd();
        while (true) {
            std::string key;
            if (!parseString(key))
                return false;
            skipSpace();
            if (!consume(':'))
                return false;
            JsonValue value;
            if (!parseValue(value))
                return false;
            fields[key] = std::move(value);
            skipSpace();
            if (consume(',')) {
                skipSpace();
                continue;
            }
            if (consume('}'))
                return atEnd();
            return false;
        }
    }

  private:
    void skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool atEnd()
    {
        skipSpace();
        return pos_ == text_.size();
    }

    bool parseHex4(unsigned &out)
    {
        out = 0;
        for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size())
                return false;
            char c = text_[pos_++];
            unsigned digit;
            if (c >= '0' && c <= '9')
                digit = static_cast<unsigned>(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = static_cast<unsigned>(c - 'a') + 10;
            else if (c >= 'A' && c <= 'F')
                digit = static_cast<unsigned>(c - 'A') + 10;
            else
                return false;
            out = (out << 4) | digit;
        }
        return true;
    }

    bool parseString(std::string &out)
    {
        skipSpace();
        if (!consume('"'))
            return false;
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return false;
            char esc = text_[pos_++];
            switch (esc) {
            case '"': out.push_back('"'); break;
            case '\\': out.push_back('\\'); break;
            case '/': out.push_back('/'); break;
            case 'n': out.push_back('\n'); break;
            case 't': out.push_back('\t'); break;
            case 'r': out.push_back('\r'); break;
            case 'b': out.push_back('\b'); break;
            case 'f': out.push_back('\f'); break;
            case 'u': {
                unsigned code;
                if (!parseHex4(code) || code > 0xff)
                    return false; // encoder only emits \u00XX
                out.push_back(static_cast<char>(code));
                break;
            }
            default: return false;
            }
        }
        return false; // unterminated
    }

    bool parseValue(JsonValue &value)
    {
        skipSpace();
        if (pos_ >= text_.size())
            return false;
        char c = text_[pos_];
        if (c == '"') {
            value.kind = JsonValue::Kind::String;
            return parseString(value.str);
        }
        if (c == '[') {
            ++pos_;
            value.kind = JsonValue::Kind::Array;
            skipSpace();
            if (consume(']'))
                return true;
            while (true) {
                std::string item;
                if (!parseString(item))
                    return false;
                value.items.push_back(std::move(item));
                skipSpace();
                if (consume(',')) {
                    skipSpace();
                    continue;
                }
                return consume(']');
            }
        }
        if (c == 't' || c == 'f') {
            const char *word = c == 't' ? "true" : "false";
            for (const char *p = word; *p; ++p)
                if (pos_ >= text_.size() || text_[pos_++] != *p)
                    return false;
            value.kind = JsonValue::Kind::Bool;
            value.flag = c == 't';
            return true;
        }
        if (c >= '0' && c <= '9') {
            value.kind = JsonValue::Kind::Number;
            value.num = 0;
            while (pos_ < text_.size() && text_[pos_] >= '0' &&
                   text_[pos_] <= '9') {
                std::uint64_t digit =
                    static_cast<std::uint64_t>(text_[pos_] - '0');
                if (value.num > (UINT64_MAX - digit) / 10)
                    return false; // overflow
                value.num = value.num * 10 + digit;
                ++pos_;
            }
            return true;
        }
        return false;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

// ----- Socket helpers --------------------------------------------------

/** recv() exactly @p count bytes; 0 = clean EOF at offset 0. */
FrameStatus
recvAll(int fd, void *buffer, std::size_t count)
{
    char *out = static_cast<char *>(buffer);
    std::size_t done = 0;
    while (done < count) {
        ssize_t n = ::recv(fd, out + done, count - done, 0);
        if (n == 0)
            return done == 0 ? FrameStatus::Eof : FrameStatus::Error;
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return FrameStatus::Error;
        }
        done += static_cast<std::size_t>(n);
    }
    return FrameStatus::Ok;
}

/** send() all of @p count bytes (MSG_NOSIGNAL: no SIGPIPE). */
bool
sendAll(int fd, const void *buffer, std::size_t count)
{
    const char *in = static_cast<const char *>(buffer);
    std::size_t done = 0;
    while (done < count) {
        ssize_t n = ::send(fd, in + done, count - done, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

std::string
opName(Op op)
{
    switch (op) {
    case Op::Characterize: return "characterize";
    case Op::Memory: return "memory";
    case Op::Subset: return "subset";
    case Op::Sensitivity: return "sensitivity";
    case Op::Stats: return "stats";
    case Op::Shutdown: return "shutdown";
    }
    return "stats";
}

bool
opFromName(const std::string &name, Op &op)
{
    if (name == "characterize")
        op = Op::Characterize;
    else if (name == "memory")
        op = Op::Memory;
    else if (name == "subset")
        op = Op::Subset;
    else if (name == "sensitivity")
        op = Op::Sensitivity;
    else if (name == "stats")
        op = Op::Stats;
    else if (name == "shutdown")
        op = Op::Shutdown;
    else
        return false;
    return true;
}

std::string
jsonQuote(const std::string &text)
{
    std::string out = "\"";
    for (char c : text) {
        unsigned char u = static_cast<unsigned char>(c);
        if (c == '"')
            out += "\\\"";
        else if (c == '\\')
            out += "\\\\";
        else if (u < 0x20) {
            char buffer[8];
            std::snprintf(buffer, sizeof(buffer), "\\u%04x", u);
            out += buffer;
        } else {
            out.push_back(c);
        }
    }
    out.push_back('"');
    return out;
}

std::string
encodeRequest(const Request &request)
{
    std::string out = "{\"op\": " + jsonQuote(opName(request.op));
    if (!request.benchmarks.empty()) {
        out += ", \"benchmarks\": [";
        const char *sep = "";
        for (const std::string &name : request.benchmarks) {
            out += sep;
            out += jsonQuote(name);
            sep = ", ";
        }
        out += "]";
    }
    if (!request.category.empty())
        out += ", \"category\": " + jsonQuote(request.category);
    if (request.op == Op::Subset)
        out += ", \"k\": " + std::to_string(request.k);
    if (!request.metric.empty())
        out += ", \"metric\": " + jsonQuote(request.metric);
    out += "}";
    return out;
}

std::string
encodeResponse(const Response &response)
{
    return std::string("{\"ok\": ") +
           (response.ok ? "true" : "false") +
           ", \"output\": " + jsonQuote(response.output) +
           ", \"error\": " + jsonQuote(response.error) + "}";
}

bool
decodeRequest(const std::string &payload, Request &request,
              std::string &error)
{
    std::map<std::string, JsonValue> fields;
    Parser parser(payload);
    if (!parser.parseObject(fields)) {
        error = "malformed request frame";
        return false;
    }
    auto op = fields.find("op");
    if (op == fields.end() ||
        op->second.kind != JsonValue::Kind::String ||
        !opFromName(op->second.str, request.op)) {
        error = "unknown op";
        return false;
    }
    auto benchmarks = fields.find("benchmarks");
    if (benchmarks != fields.end()) {
        if (benchmarks->second.kind != JsonValue::Kind::Array) {
            error = "benchmarks must be an array of strings";
            return false;
        }
        request.benchmarks = std::move(benchmarks->second.items);
    }
    auto category = fields.find("category");
    if (category != fields.end()) {
        if (category->second.kind != JsonValue::Kind::String) {
            error = "category must be a string";
            return false;
        }
        request.category = std::move(category->second.str);
    }
    auto k = fields.find("k");
    if (k != fields.end()) {
        if (k->second.kind != JsonValue::Kind::Number) {
            error = "k must be an unsigned integer";
            return false;
        }
        request.k = static_cast<std::size_t>(k->second.num);
    }
    auto metric = fields.find("metric");
    if (metric != fields.end()) {
        if (metric->second.kind != JsonValue::Kind::String) {
            error = "metric must be a string";
            return false;
        }
        request.metric = std::move(metric->second.str);
    }
    return true;
}

bool
decodeResponse(const std::string &payload, Response &response,
               std::string &error)
{
    std::map<std::string, JsonValue> fields;
    Parser parser(payload);
    if (!parser.parseObject(fields)) {
        error = "malformed response frame";
        return false;
    }
    auto ok = fields.find("ok");
    if (ok == fields.end() || ok->second.kind != JsonValue::Kind::Bool) {
        error = "response missing ok";
        return false;
    }
    response.ok = ok->second.flag;
    auto output = fields.find("output");
    if (output != fields.end() &&
        output->second.kind == JsonValue::Kind::String)
        response.output = std::move(output->second.str);
    auto err = fields.find("error");
    if (err != fields.end() &&
        err->second.kind == JsonValue::Kind::String)
        response.error = std::move(err->second.str);
    return true;
}

FrameStatus
readFrame(int fd, std::string &payload, std::size_t max_bytes)
{
    unsigned char header[4];
    FrameStatus status = recvAll(fd, header, sizeof(header));
    if (status != FrameStatus::Ok)
        return status;
    std::uint32_t length = (static_cast<std::uint32_t>(header[0]) << 24) |
                           (static_cast<std::uint32_t>(header[1]) << 16) |
                           (static_cast<std::uint32_t>(header[2]) << 8) |
                           static_cast<std::uint32_t>(header[3]);
    if (length > max_bytes)
        return FrameStatus::TooLarge;
    payload.resize(length);
    if (length == 0)
        return FrameStatus::Ok;
    status = recvAll(fd, payload.data(), length);
    return status == FrameStatus::Ok ? FrameStatus::Ok
                                     : FrameStatus::Error;
}

bool
writeFrame(int fd, const std::string &payload)
{
    if (payload.size() > kMaxFrameBytes)
        return false;
    std::uint32_t length = static_cast<std::uint32_t>(payload.size());
    unsigned char header[4] = {
        static_cast<unsigned char>((length >> 24) & 0xff),
        static_cast<unsigned char>((length >> 16) & 0xff),
        static_cast<unsigned char>((length >> 8) & 0xff),
        static_cast<unsigned char>(length & 0xff),
    };
    if (!sendAll(fd, header, sizeof(header)))
        return false;
    return sendAll(fd, payload.data(), payload.size());
}

} // namespace serve
} // namespace speclens
