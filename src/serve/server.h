/**
 * @file
 * The speclens serve daemon: a loopback TCP server answering analysis
 * queries over the length-prefixed JSON protocol (protocol.h).
 *
 * Architecture: one blocking accept loop, one detached-by-join thread
 * per connection, all requests dispatched against a single shared
 * ServiceContext — so every query shares the immutable model registry,
 * the sharded artifact store (with its result LRU), the worker pool
 * and the per-machine-set Characterizers.  Two concurrent requests
 * that need the same (benchmark, machine) cell share one simulation
 * through the Characterizer's in-flight dedup map; a warm store makes
 * a query run zero simulations.
 *
 * Graceful drain: requestDrain() is async-signal-safe (an atomic flag
 * plus shutdown() on the listening socket — both fine in a SIGTERM
 * handler).  serveForever() then stops accepting, half-closes idle
 * connections (SHUT_RD: in-flight responses still go out), joins every
 * handler and returns.  No in-flight request is dropped.
 *
 * Observability (--metrics): per-request latency spans
 * `serve.request.<op>`, counters `serve.requests`, `serve.errors`,
 * `serve.dropped` — on top of the core store/characterizer metrics.
 */

#ifndef SPECLENS_SERVE_SERVER_H
#define SPECLENS_SERVE_SERVER_H

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/service_context.h"
#include "serve/protocol.h"

namespace speclens {
namespace serve {

/** Everything a Server is built from. */
struct ServerConfig
{
    /** Listen address; loopback by default (no remote exposure). */
    std::string host = "127.0.0.1";

    /** TCP port; 0 picks an ephemeral port (see Server::port()). */
    std::uint16_t port = 0;

    /** Shared analysis state (store dir, window, jobs, LRU size). */
    core::ServiceConfig service;

    /** Per-frame size limit, both directions. */
    std::size_t max_frame_bytes = kMaxFrameBytes;
};

/** Monotonic request counters (also exported as obs counters). */
struct ServerStats
{
    std::size_t requests = 0; //!< Frames dispatched (all ops).
    std::size_t errors = 0;   //!< Malformed/rejected requests.
    std::size_t dropped = 0;  //!< Connections cut mid-request.
};

/** The daemon (see file comment). */
class Server
{
  public:
    explicit Server(ServerConfig config);

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Closes the listening socket; the context dies with the server. */
    ~Server();

    /**
     * Bind + listen.  False (with @p error set) on failure; on success
     * port() returns the actual port (resolves ephemeral port 0).
     */
    bool start(std::string *error);

    /** The bound port; 0 before start(). */
    std::uint16_t port() const { return port_; }

    /**
     * Accept/serve until a drain is requested (shutdown op, or
     * requestDrain() from a signal handler), then finish in-flight
     * requests and return.
     */
    void serveForever();

    /**
     * Begin a graceful drain.  Async-signal-safe: callable from a
     * SIGTERM/SIGINT handler.
     */
    void requestDrain();

    /** True once a drain was requested. */
    bool draining() const
    {
        return draining_.load(std::memory_order_acquire);
    }

    ServerStats stats() const;

    /** The shared analysis state all requests dispatch against. */
    const std::shared_ptr<core::ServiceContext> &context() const
    {
        return context_;
    }

    /** Dispatch one request against the shared context (no socket). */
    Response dispatch(const Request &request);

  private:
    void handleConnection(int fd);

    ServerConfig config_;
    std::shared_ptr<core::ServiceContext> context_;

    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> draining_{false};

    std::mutex mutex_; //!< Guards handlers_ and open_fds_.
    std::vector<std::thread> handlers_;
    std::map<int, bool> open_fds_; //!< fd -> still serving.

    std::atomic<std::size_t> requests_{0};
    std::atomic<std::size_t> errors_{0};
    std::atomic<std::size_t> dropped_{0};
};

} // namespace serve
} // namespace speclens

#endif // SPECLENS_SERVE_SERVER_H
