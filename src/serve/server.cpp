/**
 * @file
 * Serve-daemon implementation.
 */

#include "server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "core/query_ops.h"
#include "obs/metrics.h"

namespace speclens {
namespace serve {

namespace {

/** Close @p fd, retrying on EINTR. */
void
closeFd(int fd)
{
    while (::close(fd) < 0 && errno == EINTR) {
    }
}

} // namespace

Server::Server(ServerConfig config)
    : config_(std::move(config)),
      context_(std::make_shared<core::ServiceContext>(config_.service))
{
}

Server::~Server()
{
    if (listen_fd_ >= 0)
        closeFd(listen_fd_);
}

bool
Server::start(std::string *error)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(config_.port);
    if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) !=
        1) {
        if (error)
            *error = "invalid listen address: " + config_.host;
        return false;
    }

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        if (error)
            *error = std::string("bind: ") + std::strerror(errno);
        closeFd(listen_fd_);
        listen_fd_ = -1;
        return false;
    }
    if (::listen(listen_fd_, 64) < 0) {
        if (error)
            *error = std::string("listen: ") + std::strerror(errno);
        closeFd(listen_fd_);
        listen_fd_ = -1;
        return false;
    }

    sockaddr_in bound{};
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(listen_fd_,
                      reinterpret_cast<sockaddr *>(&bound),
                      &bound_len) == 0)
        port_ = ntohs(bound.sin_port);
    else
        port_ = config_.port;
    return true;
}

void
Server::requestDrain()
{
    // Only async-signal-safe operations here: this runs in SIGTERM /
    // SIGINT handlers.  shutdown() on the listening socket makes the
    // blocked accept() in serveForever() fail immediately (EINVAL on
    // Linux), which is the wake-up.
    draining_.store(true, std::memory_order_release);
    if (listen_fd_ >= 0)
        ::shutdown(listen_fd_, SHUT_RDWR);
}

void
Server::serveForever()
{
    while (!draining()) {
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            // EINVAL/EBADF after requestDrain() shut the socket down.
            break;
        }
        std::lock_guard<std::mutex> lock(mutex_);
        open_fds_[fd] = true;
        handlers_.emplace_back(
            [this, fd]() { handleConnection(fd); });
    }

    // Drain: half-close every connection still open so idle handlers
    // see EOF; in-flight requests still write their response (the
    // write side stays open).  Then join everyone.
    std::vector<std::thread> handlers;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[fd, serving] : open_fds_)
            if (serving)
                ::shutdown(fd, SHUT_RD);
        handlers.swap(handlers_);
    }
    for (std::thread &handler : handlers)
        handler.join();
}

Response
Server::dispatch(const Request &request)
{
    obs::Span span(obs::Registry::global().timing(
        "serve.request." + opName(request.op)));
    obs::Registry::global().counter("serve.requests").add(1);
    requests_.fetch_add(1, std::memory_order_relaxed);

    Response response;
    core::QueryOutcome outcome;
    switch (request.op) {
    case Op::Characterize:
        outcome = core::runCharacterizeQuery(*context_,
                                             request.benchmarks);
        break;
    case Op::Memory:
        outcome = core::runMemoryQuery(*context_, request.benchmarks);
        break;
    case Op::Subset:
        outcome = core::runSubsetQuery(*context_, request.category,
                                       request.k);
        break;
    case Op::Sensitivity:
        outcome = core::runSensitivityQuery(*context_, request.metric);
        break;
    case Op::Stats: {
        core::ServiceContext &context = *context_;
        outcome.output =
            "requests=" +
            std::to_string(requests_.load(std::memory_order_relaxed)) +
            " errors=" +
            std::to_string(errors_.load(std::memory_order_relaxed)) +
            " dropped=" +
            std::to_string(dropped_.load(std::memory_order_relaxed)) +
            "\n" + context.summary() + "\nsimulations=" +
            std::to_string(context.simulationsRun()) + "\n";
        if (core::CampaignStore *store = context.store()) {
            core::StoreCounters c = store->counters();
            outcome.output +=
                "lru: size=" + std::to_string(store->lruSize()) +
                " capacity=" + std::to_string(store->lruCapacity()) +
                " hits=" + std::to_string(c.lru_hits) +
                " evictions=" + std::to_string(c.lru_evictions) + "\n";
        }
        break;
    }
    case Op::Shutdown:
        outcome.output = "draining\n";
        break;
    }

    response.ok = outcome.ok;
    response.output = std::move(outcome.output);
    response.error = std::move(outcome.error);
    if (!response.ok) {
        obs::Registry::global().counter("serve.errors").add(1);
        errors_.fetch_add(1, std::memory_order_relaxed);
    }
    return response;
}

void
Server::handleConnection(int fd)
{
    std::string payload;
    while (true) {
        FrameStatus status =
            readFrame(fd, payload, config_.max_frame_bytes);
        if (status == FrameStatus::Eof)
            break;
        if (status == FrameStatus::Error) {
            obs::Registry::global().counter("serve.dropped").add(1);
            dropped_.fetch_add(1, std::memory_order_relaxed);
            break;
        }
        Response response;
        if (status == FrameStatus::TooLarge) {
            response.error = "request frame too large";
            errors_.fetch_add(1, std::memory_order_relaxed);
            obs::Registry::global().counter("serve.errors").add(1);
            writeFrame(fd, encodeResponse(response));
            break; // framing is lost after an unread oversize payload
        }
        Request request;
        std::string decode_error;
        if (!decodeRequest(payload, request, decode_error)) {
            response.error = decode_error;
            errors_.fetch_add(1, std::memory_order_relaxed);
            obs::Registry::global().counter("serve.errors").add(1);
            if (!writeFrame(fd, encodeResponse(response)))
                break;
            continue;
        }
        response = dispatch(request);
        bool sent = writeFrame(fd, encodeResponse(response));
        if (request.op == Op::Shutdown) {
            requestDrain();
            break;
        }
        if (!sent) {
            dropped_.fetch_add(1, std::memory_order_relaxed);
            obs::Registry::global().counter("serve.dropped").add(1);
            break;
        }
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        open_fds_.erase(fd);
    }
    closeFd(fd);
}

ServerStats
Server::stats() const
{
    ServerStats stats;
    stats.requests = requests_.load(std::memory_order_relaxed);
    stats.errors = errors_.load(std::memory_order_relaxed);
    stats.dropped = dropped_.load(std::memory_order_relaxed);
    return stats;
}

} // namespace serve
} // namespace speclens
