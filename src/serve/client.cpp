/**
 * @file
 * Serve-client implementation.
 */

#include "client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace speclens {
namespace serve {

Client::~Client()
{
    close();
}

bool
Client::connect(const std::string &host, std::uint16_t port,
                std::string *error)
{
    close();
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        if (error)
            *error = "invalid server address: " + host;
        return false;
    }
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
        if (error)
            *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        if (error)
            *error = std::string("connect: ") + std::strerror(errno);
        close();
        return false;
    }
    return true;
}

bool
Client::call(const Request &request, Response *response,
             std::string *error)
{
    if (fd_ < 0) {
        if (error)
            *error = "not connected";
        return false;
    }
    if (!writeFrame(fd_, encodeRequest(request))) {
        if (error)
            *error = "send failed";
        close();
        return false;
    }
    std::string payload;
    FrameStatus status = readFrame(fd_, payload);
    if (status != FrameStatus::Ok) {
        if (error)
            *error = status == FrameStatus::Eof
                         ? "server closed the connection"
                         : "receive failed";
        close();
        return false;
    }
    Response decoded;
    std::string decode_error;
    if (!decodeResponse(payload, decoded, decode_error)) {
        if (error)
            *error = decode_error;
        close();
        return false;
    }
    if (response)
        *response = std::move(decoded);
    return true;
}

void
Client::close()
{
    if (fd_ < 0)
        return;
    while (::close(fd_) < 0 && errno == EINTR) {
    }
    fd_ = -1;
}

} // namespace serve
} // namespace speclens
