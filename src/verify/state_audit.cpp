/**
 * @file
 * Structural invariant prover implementation.
 *
 * Every check here proves a property the hot-path equivalence tricks
 * (run collapsing, cold fill, the closed-form prewarm solver, batched
 * predictor kernels) rely on but never re-verify at run time.  The
 * checks read private structure state through friendship and never
 * mutate it; the only writers are the *ForTest corruption helpers used
 * by the seeded-violation tests.
 */

#include "verify/state_audit.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <string>
#include <variant>

namespace speclens {
namespace verify {

namespace {

/**
 * Appends violations for one structure, enforcing the per-audit cap so
 * a corrupted array cannot emit millions of records.
 */
class Emitter
{
  public:
    Emitter(std::string structure, std::vector<Violation> &out)
        : structure_(std::move(structure)), out_(out),
          base_(out.size())
    {
    }

    void
    emit(const char *invariant, std::string location, std::string detail)
    {
        if (out_.size() - base_ >= StateAuditor::kMaxViolationsPerAudit)
            return;
        out_.push_back(Violation{structure_, invariant,
                                 std::move(location), std::move(detail)});
    }

    bool
    saturated() const
    {
        return out_.size() - base_ >= StateAuditor::kMaxViolationsPerAudit;
    }

  private:
    std::string structure_;
    std::vector<Violation> &out_;
    std::size_t base_;
};

std::string
setWay(std::uint64_t set, std::uint32_t way)
{
    return "set " + std::to_string(set) + " way " + std::to_string(way);
}

std::string
setOnly(std::uint64_t set)
{
    return "set " + std::to_string(set);
}

/** Check the 2-bit saturating counter table shared by four designs. */
void
auditCounterTable(Emitter &em, const char *table,
                  const std::vector<std::uint8_t> &counters,
                  std::size_t mask)
{
    if (counters.size() != mask + 1 ||
        !std::has_single_bit(counters.size())) {
        em.emit("table-size", table,
                "size " + std::to_string(counters.size()) +
                    " != mask+1 " + std::to_string(mask + 1));
        return;
    }
    for (std::size_t i = 0; i < counters.size(); ++i) {
        if (counters[i] > 3) {
            em.emit("counter-range",
                    std::string(table) + "[" + std::to_string(i) + "]",
                    "2-bit counter holds " +
                        std::to_string(counters[i]));
            if (em.saturated())
                return;
        }
    }
}

} // namespace

std::string
renderViolation(const Violation &v)
{
    std::string line = v.structure + ": " + v.invariant;
    if (!v.location.empty())
        line += " @ " + v.location;
    if (!v.detail.empty())
        line += ": " + v.detail;
    return line;
}

void
StateAuditor::auditCache(const uarch::Cache &cache,
                         std::vector<Violation> &out)
{
    const uarch::CacheConfig &cfg = cache.config_;
    Emitter em(cfg.name, out);
    const std::uint32_t assoc = cfg.associativity;
    const bool stamped = cfg.policy == uarch::ReplacementPolicy::Lru ||
                         cfg.policy == uarch::ReplacementPolicy::Fifo;

    if (cache.hits_ > cache.accesses_) {
        em.emit("hits-bound", "",
                std::to_string(cache.hits_) + " hits > " +
                    std::to_string(cache.accesses_) + " accesses");
    }

    // Way-predictor invariants.  The table exists exactly when the
    // config enables prediction (one partition for MRU, two for
    // multi-MRU), every trained entry is a legal way, and each
    // hit/mispredict tally corresponds to one cache hit (misses never
    // verify a prediction).
    {
        std::uint32_t expected_parts =
            cfg.way_prediction == uarch::WayPredictionKind::None ? 0u
            : cfg.way_prediction == uarch::WayPredictionKind::Mru ? 1u
                                                                  : 2u;
        if (cache.way_pred_parts_ != expected_parts ||
            cache.way_pred_.size() !=
                cache.num_sets_ * expected_parts) {
            em.emit("waypred-shape", "",
                    std::to_string(cache.way_pred_.size()) +
                        " entries / " +
                        std::to_string(cache.way_pred_parts_) +
                        " partitions for policy " +
                        uarch::wayPredictionKindName(
                            cfg.way_prediction));
        } else {
            for (std::size_t i = 0; i < cache.way_pred_.size(); ++i) {
                if (cache.way_pred_[i] >= assoc) {
                    em.emit("waypred-domain",
                            "entry " + std::to_string(i),
                            "predicted way " +
                                std::to_string(cache.way_pred_[i]) +
                                " of " + std::to_string(assoc));
                    if (em.saturated())
                        return;
                }
            }
        }
        if (expected_parts == 0 && (cache.way_pred_hits_ != 0 ||
                                    cache.way_pred_mispredicts_ != 0)) {
            em.emit("waypred-counters", "",
                    "prediction counters nonzero with prediction off");
        }
        if (cache.way_pred_hits_ + cache.way_pred_mispredicts_ >
            cache.hits_) {
            em.emit("waypred-bound", "",
                    std::to_string(cache.way_pred_hits_ +
                                   cache.way_pred_mispredicts_) +
                        " predictions > " +
                        std::to_string(cache.hits_) + " hits");
        }
    }

    if (cfg.line_bytes == 0 ||
        !std::has_single_bit(std::uint64_t{cfg.line_bytes})) {
        em.emit("page-alignment", "",
                "line/page size " + std::to_string(cfg.line_bytes) +
                    " not a power of two");
        return; // line_shift_-derived checks below would be garbage
    }

    // Largest representable line address: tags are line_addr / sets, so
    // a stored tag must reconstruct to a line address within 64 bits.
    const std::uint64_t max_line = ~0ull >> cache.line_shift_;

    for (std::uint64_t set = 0; set < cache.num_sets_ && !em.saturated();
         ++set) {
        const std::uint64_t *tags = &cache.tags_[set * assoc];
        const std::uint64_t *stamps = &cache.stamps_[set * assoc];

        bool saw_invalid = false;
        for (std::uint32_t w = 0; w < assoc; ++w) {
            if (tags[w] == uarch::Cache::kInvalidTag) {
                saw_invalid = true;
                continue;
            }
            // Fills always take the first invalid way and nothing
            // invalidates an individual line (see Cache::access), so
            // invalid ways must form a suffix of the set.
            if (saw_invalid) {
                em.emit("invalid-suffix", setWay(set, w),
                        "valid way after an invalid way");
            }
            if (tags[w] > (max_line - set) / cache.num_sets_) {
                em.emit("tag-domain", setWay(set, w),
                        "tag " + std::to_string(tags[w]) +
                            " reconstructs past the address space");
            }
            for (std::uint32_t v = w + 1; v < assoc; ++v) {
                if (tags[v] != uarch::Cache::kInvalidTag &&
                    tags[v] == tags[w]) {
                    em.emit("duplicate-line", setWay(set, v),
                            "tag " + std::to_string(tags[w]) +
                                " also in way " + std::to_string(w));
                }
            }
            if (stamped) {
                // Every valid way was filled, and filling writes the
                // stamp first, so the stamp is defined and bounded by
                // the monotonic tick.
                std::uint64_t stamp = stamps[w];
                if (stamp == 0 || stamp > cache.tick_) {
                    em.emit("stamp-bound", setWay(set, w),
                            "stamp " + std::to_string(stamp) +
                                " outside [1, " +
                                std::to_string(cache.tick_) + "]");
                }
                for (std::uint32_t v = w + 1; v < assoc; ++v) {
                    if (tags[v] != uarch::Cache::kInvalidTag &&
                        stamps[v] == stamp) {
                        em.emit("stamp-unique", setWay(set, v),
                                "stamp " + std::to_string(stamp) +
                                    " also on way " + std::to_string(w));
                    }
                }
            }
        }

        if (cfg.policy == uarch::ReplacementPolicy::TreePlru &&
            assoc > 1 && cache.plru_[set] >= (1u << (assoc - 1))) {
            // The decision tree of an assoc-way set has assoc-1 nodes;
            // higher bits are never written by plruTouchState.
            em.emit("plru-domain", setOnly(set),
                    "state " + std::to_string(cache.plru_[set]) +
                        " uses bits past node " +
                        std::to_string(assoc - 1));
        }

        if (!cache.cold_fills_.empty()) {
            std::uint32_t fills = cache.cold_fills_[set];
            bool bad = stamped ? fills >= assoc : fills > assoc;
            if (bad) {
                em.emit("fill-counter", setOnly(set),
                        "fill counter " + std::to_string(fills) +
                            " out of range for " + std::to_string(assoc) +
                            " ways");
            }
        }
    }
}

void
StateAuditor::auditCaches(const uarch::CacheHierarchy &caches,
                          std::vector<Violation> &out)
{
    auditCache(caches.l1i_cache_, out);
    auditCache(caches.l1d_cache_, out);
    auditCache(caches.l2_cache_, out);
    if (caches.l3_cache_)
        auditCache(*caches.l3_cache_, out);
    auditPrefetcher(caches, out);
    if (caches.dram_)
        auditDram(*caches.dram_, out);
}

void
StateAuditor::auditPrefetcher(const uarch::CacheHierarchy &caches,
                              std::vector<Violation> &out)
{
    Emitter em("prefetcher", out);
    const uarch::Cache &l2 = caches.l2_cache_;
    const std::size_t slots =
        l2.num_sets_ * l2.config_.associativity;

    if (caches.prefetch_degree_ == 0) {
        // Off: no tracking state may exist and no counter may move.
        if (!caches.l2_prefetch_bits_.empty())
            em.emit("bit-shape", "",
                    std::to_string(caches.l2_prefetch_bits_.size()) +
                        " tracking bits with the prefetcher off");
        if (caches.prefetch_fills_ != 0 ||
            caches.prefetch_useful_ != 0 ||
            caches.prefetch_evicted_unused_ != 0)
            em.emit("counters-off", "",
                    "prefetch counters nonzero with the prefetcher "
                    "off");
        return;
    }

    if (caches.l2_prefetch_bits_.size() != slots) {
        em.emit("bit-shape", "",
                std::to_string(caches.l2_prefetch_bits_.size()) +
                    " tracking bits for " + std::to_string(slots) +
                    " L2 slots");
        return; // the identity below would read out of bounds
    }

    std::uint64_t resident = 0;
    for (std::size_t slot = 0; slot < slots; ++slot) {
        std::uint8_t bit = caches.l2_prefetch_bits_[slot];
        if (bit > 1) {
            em.emit("bit-domain", "slot " + std::to_string(slot),
                    "tracking bit holds " + std::to_string(bit));
            if (em.saturated())
                return;
            continue;
        }
        if (bit == 0)
            continue;
        ++resident;
        // A set bit marks a resident prefetched line; eviction paths
        // clear or reclassify it, so it can never sit on an invalid
        // way.
        if (l2.tags_[slot] == uarch::Cache::kInvalidTag) {
            em.emit("bit-on-invalid", "slot " + std::to_string(slot),
                    "tracking bit set on an invalid way");
            if (em.saturated())
                return;
        }
    }

    // The accounting identity the 65536-entry wipe of the old
    // unordered_set implementation silently broke: every fill is
    // consumed, evicted unused, or still resident.
    if (caches.prefetch_fills_ !=
        caches.prefetch_useful_ + caches.prefetch_evicted_unused_ +
            resident) {
        em.emit("fill-identity", "",
                std::to_string(caches.prefetch_fills_) + " fills != " +
                    std::to_string(caches.prefetch_useful_) +
                    " useful + " +
                    std::to_string(caches.prefetch_evicted_unused_) +
                    " evicted + " + std::to_string(resident) +
                    " resident");
    }

    // Engine tables exist exactly for the configured kind.
    const bool is_stride =
        caches.prefetcher_kind_ == uarch::PrefetcherKind::Stride;
    if (caches.stride_table_.size() !=
        (is_stride ? uarch::CacheHierarchy::kStrideEntries : 0u)) {
        em.emit("stride-shape", "",
                std::to_string(caches.stride_table_.size()) +
                    " stride entries for engine " +
                    uarch::prefetcherKindName(caches.prefetcher_kind_));
    } else {
        for (std::size_t i = 0; i < caches.stride_table_.size(); ++i) {
            const auto &entry = caches.stride_table_[i];
            if (entry.confidence > 3)
                em.emit("stride-confidence",
                        "entry " + std::to_string(i),
                        "2-bit confidence holds " +
                            std::to_string(entry.confidence));
            if (entry.valid > 1)
                em.emit("stride-valid", "entry " + std::to_string(i),
                        "valid flag holds " +
                            std::to_string(entry.valid));
            if (em.saturated())
                return;
        }
    }

    if (caches.stream_next_ >= uarch::CacheHierarchy::kStreamWindows) {
        em.emit("stream-ring", "",
                "allocation cursor " +
                    std::to_string(caches.stream_next_) + " of " +
                    std::to_string(
                        uarch::CacheHierarchy::kStreamWindows) +
                    " windows");
    }
    const bool is_stream =
        caches.prefetcher_kind_ == uarch::PrefetcherKind::Stream;
    for (std::size_t i = 0; i < caches.stream_windows_.size(); ++i) {
        const auto &window = caches.stream_windows_[i];
        if (window.valid > 1)
            em.emit("stream-valid", "window " + std::to_string(i),
                    "valid flag holds " + std::to_string(window.valid));
        else if (!is_stream && window.valid != 0)
            em.emit("stream-shape", "window " + std::to_string(i),
                    "active window for engine " +
                        uarch::prefetcherKindName(
                            caches.prefetcher_kind_));
        if (em.saturated())
            return;
    }
}

void
StateAuditor::auditDram(const uarch::DramModel &dram,
                        std::vector<Violation> &out)
{
    Emitter em("dram", out);
    const uarch::DramConfig &cfg = dram.config_;

    if (dram.open_row_.size() != cfg.banks ||
        dram.row_open_.size() != cfg.banks) {
        em.emit("bank-shape", "",
                std::to_string(dram.open_row_.size()) + " rows / " +
                    std::to_string(dram.row_open_.size()) +
                    " flags for " + std::to_string(cfg.banks) +
                    " banks");
        return;
    }

    // Rows are (addr >> row_shift) >> bank_shift, so an open row above
    // this bound cannot be produced by any 64-bit address.
    const std::uint64_t max_row =
        (~0ull >> dram.row_shift_) >> dram.bank_shift_;
    for (std::size_t bank = 0; bank < cfg.banks; ++bank) {
        if (dram.row_open_[bank] > 1) {
            em.emit("flag-domain", "bank " + std::to_string(bank),
                    "open flag holds " +
                        std::to_string(dram.row_open_[bank]));
        } else if (dram.row_open_[bank] == 1 &&
                   dram.open_row_[bank] > max_row) {
            em.emit("row-domain", "bank " + std::to_string(bank),
                    "open row " +
                        std::to_string(dram.open_row_[bank]) +
                        " past the address space");
        }
        if (em.saturated())
            return;
    }

    if (dram.row_hits_ > dram.accesses_) {
        em.emit("hit-bound", "",
                std::to_string(dram.row_hits_) + " row hits > " +
                    std::to_string(dram.accesses_) + " accesses");
    }

    // Open-page policy cycle identities: every access costs exactly a
    // burst (row hit) or an activate plus a burst (row miss), and the
    // budget grants a fixed allowance per access.
    std::uint64_t misses = dram.accesses_ - dram.row_hits_;
    std::uint64_t expected_busy =
        dram.row_hits_ * cfg.burst_cycles +
        misses * (cfg.activate_cycles + cfg.burst_cycles);
    if (dram.row_hits_ <= dram.accesses_ &&
        dram.busy_cycles_ != expected_busy) {
        em.emit("busy-identity", "",
                std::to_string(dram.busy_cycles_) +
                    " busy cycles, expected " +
                    std::to_string(expected_busy));
    }
    if (dram.budget_cycles_ !=
        dram.accesses_ * cfg.cycles_per_burst_budget) {
        em.emit("budget-identity", "",
                std::to_string(dram.budget_cycles_) +
                    " budget cycles for " +
                    std::to_string(dram.accesses_) + " accesses");
    }
}

void
StateAuditor::auditTlbs(const uarch::TlbHierarchy &tlbs,
                        std::vector<Violation> &out)
{
    auditCache(tlbs.itlb_, out);
    auditCache(tlbs.dtlb_, out);
    if (tlbs.l2tlb_)
        auditCache(*tlbs.l2tlb_, out);

    Emitter em("tlb", out);

    // Every path that counts a page walk counts a last-level TLB miss
    // in the same statement (accessCommon, prewarmFill*, the solver)
    // and reset() zeroes both, so the counters move in lockstep.
    if (tlbs.page_walks_ != tlbs.l2tlb_misses_) {
        em.emit("walk-consistency", "",
                std::to_string(tlbs.page_walks_) + " walks != " +
                    std::to_string(tlbs.l2tlb_misses_) +
                    " last-level misses");
    }
    std::uint64_t l1_misses = tlbs.itlb_.misses() + tlbs.dtlb_.misses();
    if (tlbs.page_walks_ > l1_misses) {
        em.emit("walk-bound", "",
                std::to_string(tlbs.page_walks_) + " walks > " +
                    std::to_string(l1_misses) + " first-level misses");
    }

    // Geometry: all levels translate the same page size, and a shared
    // second level must cover (reach at least) each first-level TLB,
    // mirroring the configured-machine rule SL009 on the live state.
    std::uint64_t ipage = tlbs.itlb_.config().line_bytes;
    std::uint64_t dpage = tlbs.dtlb_.config().line_bytes;
    if (ipage != dpage) {
        em.emit("page-geometry", "",
                "ITLB page " + std::to_string(ipage) + " != DTLB page " +
                    std::to_string(dpage));
    }
    if (tlbs.l2tlb_) {
        const uarch::CacheConfig &l2 = tlbs.l2tlb_->config();
        if (l2.line_bytes != ipage) {
            em.emit("page-geometry", "L2TLB",
                    "page " + std::to_string(l2.line_bytes) +
                        " != L1 page " + std::to_string(ipage));
        }
        std::uint64_t reach = l2.size_bytes;
        std::uint64_t l1_reach =
            std::max(tlbs.itlb_.config().size_bytes,
                     tlbs.dtlb_.config().size_bytes);
        if (reach < l1_reach) {
            em.emit("tlb-reach", "L2TLB",
                    "reach " + std::to_string(reach) +
                        " bytes below first-level reach " +
                        std::to_string(l1_reach));
        }
    }
}

void
StateAuditor::auditBimodal(const char *structure,
                           const uarch::BimodalPredictor &p,
                           std::vector<Violation> &out)
{
    Emitter em(structure, out);
    auditCounterTable(em, "counters", p.counters_, p.mask_);
}

void
StateAuditor::auditGshare(const char *structure,
                          const uarch::GsharePredictor &p,
                          std::vector<Violation> &out)
{
    Emitter em(structure, out);
    auditCounterTable(em, "counters", p.counters_, p.mask_);
    // update() masks the shifted history every time, so no bit above
    // the configured width can ever be set.
    if ((p.history_ & ~p.history_mask_) != 0) {
        em.emit("history-width", "",
                "history " + std::to_string(p.history_) +
                    " exceeds mask " + std::to_string(p.history_mask_));
    }
}

void
StateAuditor::auditPredictor(const uarch::PredictorVariant &predictor,
                             std::vector<Violation> &out)
{
    std::visit(
        [&out](const auto &p) {
            using P = std::decay_t<decltype(p)>;
            if constexpr (std::is_same_v<P, uarch::StaticTakenPredictor>) {
                // Stateless; nothing to prove.
            } else if constexpr (std::is_same_v<P,
                                                uarch::BimodalPredictor>) {
                auditBimodal("predictor/bimodal", p, out);
            } else if constexpr (std::is_same_v<P,
                                                uarch::GsharePredictor>) {
                auditGshare("predictor/gshare", p, out);
            } else if constexpr (std::is_same_v<
                                     P, uarch::TournamentPredictor>) {
                auditBimodal("predictor/tournament/bimodal", p.bimodal_,
                             out);
                auditGshare("predictor/tournament/gshare", p.gshare_, out);
                Emitter em("predictor/tournament", out);
                auditCounterTable(em, "chooser", p.chooser_, p.mask_);
            } else if constexpr (std::is_same_v<
                                     P, uarch::PerceptronPredictor>) {
                Emitter em("predictor/perceptron", out);
                if (p.weights_.size() != p.mask_ + 1) {
                    em.emit("table-size", "weights",
                            "size " + std::to_string(p.weights_.size()) +
                                " != mask+1 " +
                                std::to_string(p.mask_ + 1));
                    return;
                }
                for (std::size_t i = 0;
                     i < p.weights_.size() && !em.saturated(); ++i) {
                    const std::vector<int> &row = p.weights_[i];
                    if (row.size() != p.history_bits_ + 1) {
                        em.emit("table-shape",
                                "weights[" + std::to_string(i) + "]",
                                "row size " + std::to_string(row.size()) +
                                    " != bias + " +
                                    std::to_string(p.history_bits_) +
                                    " history bits");
                        continue;
                    }
                    for (std::size_t j = 0; j < row.size(); ++j) {
                        // update() clamps every weight to +/-127
                        // (branch_predictor.cpp weight_cap).
                        if (row[j] > 127 || row[j] < -127) {
                            em.emit("weight-range",
                                    "weights[" + std::to_string(i) +
                                        "][" + std::to_string(j) + "]",
                                    "weight " + std::to_string(row[j]) +
                                        " outside +/-127");
                            if (em.saturated())
                                return;
                        }
                    }
                }
            } else if constexpr (std::is_same_v<P,
                                                uarch::TageLitePredictor>) {
                auditBimodal("predictor/tage-lite/base", p.base_, out);
                Emitter em("predictor/tage-lite", out);
                if (p.tables_.size() != p.history_lengths_.size()) {
                    em.emit("table-count", "",
                            std::to_string(p.tables_.size()) +
                                " tables vs " +
                                std::to_string(p.history_lengths_.size()) +
                                " history lengths");
                    return;
                }
                for (std::size_t t = 0; t < p.history_lengths_.size();
                     ++t) {
                    unsigned len = p.history_lengths_[t];
                    // Geometric series capped at 63 bits (the history
                    // register is one 64-bit word).
                    bool ordered =
                        t == 0 || len >= p.history_lengths_[t - 1];
                    if (len == 0 || len > 63 || !ordered) {
                        em.emit("history-geometric",
                                "table " + std::to_string(t),
                                "length " + std::to_string(len));
                    }
                }
                for (std::size_t t = 0;
                     t < p.tables_.size() && !em.saturated(); ++t) {
                    const auto &table = p.tables_[t];
                    if (table.size() != p.mask_ + 1) {
                        em.emit("table-size", "table " + std::to_string(t),
                                "size " + std::to_string(table.size()) +
                                    " != mask+1 " +
                                    std::to_string(p.mask_ + 1));
                        continue;
                    }
                    for (std::size_t i = 0; i < table.size(); ++i) {
                        const auto &e = table[i];
                        std::string loc = "table " + std::to_string(t) +
                                          "[" + std::to_string(i) + "]";
                        if (e.tag > 0x3ff) // tableTag masks to 10 bits
                            em.emit("tag-width", loc,
                                    "tag " + std::to_string(e.tag));
                        if (e.counter < -4 || e.counter > 3)
                            em.emit("counter-range", loc,
                                    "3-bit counter holds " +
                                        std::to_string(e.counter));
                        if (e.useful > 3)
                            em.emit("useful-range", loc,
                                    "useful " + std::to_string(e.useful));
                        if (em.saturated())
                            return;
                    }
                }
            }
        },
        predictor);
}

/**
 * Post-prewarm fill-state audit of one cache: the survivor set must be
 * a legal end-state of a pure fill stream.  Only meaningful right
 * after prewarm — demand accesses fill ways without updating the
 * cold-fill counters (and LRU hits re-stamp arbitrary ways).
 */
void
StateAuditor::auditCacheFillState(const uarch::Cache &cache,
                                  std::vector<Violation> &out)
{
    // An empty counter array means this cache was warmed through the
    // general access() path (walk fallback) or not at all; the fill
    // invariants below are only defined for the cold-fill fast path.
    if (cache.cold_fills_.empty())
        return;

    const uarch::CacheConfig &cfg = cache.config_;
    Emitter em(cfg.name, out);
    const std::uint32_t assoc = cfg.associativity;
    const bool stamped = cfg.policy == uarch::ReplacementPolicy::Lru ||
                         cfg.policy == uarch::ReplacementPolicy::Fifo;

    for (std::uint64_t set = 0; set < cache.num_sets_ && !em.saturated();
         ++set) {
        const std::uint64_t *tags = &cache.tags_[set * assoc];
        const std::uint64_t *stamps = &cache.stamps_[set * assoc];
        std::uint32_t valid = 0;
        while (valid < assoc &&
               tags[valid] != uarch::Cache::kInvalidTag)
            ++valid;

        std::uint32_t fills = cache.cold_fills_[set];
        if (valid < assoc) {
            // The set never filled up, so the counter never wrapped
            // and must equal the per-set survivor count exactly.
            if (fills != valid) {
                em.emit("fill-consistency", setOnly(set),
                        "counter " + std::to_string(fills) + " vs " +
                            std::to_string(valid) + " survivors");
            }
        } else if (!stamped && fills != assoc) {
            // Tree-PLRU/Random hold the counter at assoc once full.
            em.emit("fill-consistency", setOnly(set),
                    "counter " + std::to_string(fills) +
                        " on a full set of " + std::to_string(assoc));
        }
        // (Full LRU/FIFO sets: the wrap residue is checked by the
        // general fill-counter bound; the order check below pins it.)

        if (!stamped)
            continue;

        // Newest-first legality: a pure fill stream fills ways round-
        // robin, so stamps must increase cyclically starting from the
        // oldest way — way 0 while filling, way `fills` after the
        // wrap.  A trailing repeat-hit re-stamp only raises the newest
        // way, which preserves the order.
        std::uint32_t start = valid < assoc ? 0 : fills % assoc;
        std::uint64_t prev = 0;
        for (std::uint32_t k = 0; k < valid; ++k) {
            std::uint32_t w = (start + k) % assoc;
            if (stamps[w] <= prev) {
                em.emit("fill-order", setWay(set, w),
                        "stamp " + std::to_string(stamps[w]) +
                            " not newer than predecessor " +
                            std::to_string(prev));
                break;
            }
            prev = stamps[w];
        }
    }
}

void
StateAuditor::auditPrewarm(const uarch::CacheHierarchy &caches,
                           const uarch::TlbHierarchy &tlbs,
                           std::vector<Violation> &out)
{
    auditCaches(caches, out);
    auditTlbs(tlbs, out);
    auditCacheFillState(caches.l1i_cache_, out);
    auditCacheFillState(caches.l1d_cache_, out);
    auditCacheFillState(caches.l2_cache_, out);
    if (caches.l3_cache_)
        auditCacheFillState(*caches.l3_cache_, out);
    auditCacheFillState(tlbs.itlb_, out);
    auditCacheFillState(tlbs.dtlb_, out);
    if (tlbs.l2tlb_)
        auditCacheFillState(*tlbs.l2tlb_, out);
}

void
StateAuditor::auditAll(const uarch::CacheHierarchy &caches,
                       const uarch::TlbHierarchy &tlbs,
                       const uarch::PredictorVariant &predictor,
                       std::vector<Violation> &out)
{
    auditCaches(caches, out);
    auditTlbs(tlbs, out);
    auditPredictor(predictor, out);
}

// ---------------------------------------------------------------------
// Seeded-corruption helpers (tests only).

void
StateAuditor::pokeTagForTest(uarch::Cache &cache, std::size_t set,
                             std::size_t way, std::uint64_t tag)
{
    cache.tags_[set * cache.config_.associativity + way] = tag;
}

void
StateAuditor::pokeStampForTest(uarch::Cache &cache, std::size_t set,
                               std::size_t way, std::uint64_t stamp)
{
    cache.stamps_[set * cache.config_.associativity + way] = stamp;
}

void
StateAuditor::pokePlruForTest(uarch::Cache &cache, std::size_t set,
                              std::uint32_t state)
{
    cache.plru_[set] = state;
}

void
StateAuditor::pokeColdFillForTest(uarch::Cache &cache, std::size_t set,
                                  std::uint32_t fills)
{
    if (cache.cold_fills_.empty())
        cache.cold_fills_.assign(cache.num_sets_, 0);
    cache.cold_fills_[set] = fills;
}

void
StateAuditor::pokeHitsForTest(uarch::Cache &cache, std::uint64_t hits)
{
    cache.hits_ = hits;
}

void
StateAuditor::pokeLineBytesForTest(uarch::Cache &cache,
                                   std::uint32_t line_bytes)
{
    cache.config_.line_bytes = line_bytes;
}

void
StateAuditor::pokePageWalksForTest(uarch::TlbHierarchy &tlbs,
                                   std::uint64_t walks)
{
    tlbs.page_walks_ = walks;
}

uarch::Cache &
StateAuditor::l1dForTest(uarch::CacheHierarchy &caches)
{
    return caches.l1d_cache_;
}

uarch::Cache &
StateAuditor::dtlbForTest(uarch::TlbHierarchy &tlbs)
{
    return tlbs.dtlb_;
}

void
StateAuditor::pokePrefetchBitForTest(uarch::CacheHierarchy &caches,
                                     std::size_t slot,
                                     std::uint8_t value)
{
    caches.l2_prefetch_bits_[slot] = value;
}

void
StateAuditor::pokePrefetchFillsForTest(uarch::CacheHierarchy &caches,
                                       std::uint64_t fills)
{
    caches.prefetch_fills_ = fills;
}

void
StateAuditor::pokeStrideConfidenceForTest(uarch::CacheHierarchy &caches,
                                          std::size_t entry,
                                          std::uint8_t confidence)
{
    caches.stride_table_[entry].confidence = confidence;
}

void
StateAuditor::pokeStreamNextForTest(uarch::CacheHierarchy &caches,
                                    std::size_t next)
{
    caches.stream_next_ = next;
}

void
StateAuditor::pokeWayPredEntryForTest(uarch::Cache &cache,
                                      std::size_t index,
                                      std::uint32_t way)
{
    cache.way_pred_[index] = way;
}

void
StateAuditor::pokeWayPredHitsForTest(uarch::Cache &cache,
                                     std::uint64_t hits)
{
    cache.way_pred_hits_ = hits;
}

void
StateAuditor::pokeDramOpenRowForTest(uarch::CacheHierarchy &caches,
                                     std::size_t bank,
                                     std::uint64_t row)
{
    caches.dram_->open_row_[bank] = row;
    caches.dram_->row_open_[bank] = 1;
}

void
StateAuditor::pokeDramBusyForTest(uarch::CacheHierarchy &caches,
                                  std::uint64_t busy_cycles)
{
    caches.dram_->busy_cycles_ = busy_cycles;
}

void
StateAuditor::pokeBimodalCounterForTest(uarch::BimodalPredictor &predictor,
                                        std::size_t index,
                                        std::uint8_t value)
{
    predictor.counters_[index] = value;
}

void
StateAuditor::pokeGshareHistoryForTest(uarch::GsharePredictor &predictor,
                                       std::uint64_t history)
{
    predictor.history_ = history;
}

void
StateAuditor::pokeChooserCounterForTest(uarch::TournamentPredictor &predictor,
                                        std::size_t index,
                                        std::uint8_t value)
{
    predictor.chooser_[index] = value;
}

void
StateAuditor::pokePerceptronWeightForTest(
    uarch::PerceptronPredictor &predictor, std::size_t row,
    std::size_t column, int weight)
{
    predictor.weights_[row][column] = weight;
}

void
StateAuditor::pokeTageEntryForTest(uarch::TageLitePredictor &predictor,
                                   std::size_t table, std::size_t index,
                                   std::uint16_t tag, std::int8_t counter,
                                   std::uint8_t useful)
{
    auto &e = predictor.tables_[table][index];
    e.tag = tag;
    e.counter = counter;
    e.useful = useful;
}

void
StateAuditor::shrinkTableForTest(uarch::PredictorVariant &predictor)
{
    std::visit(
        [](auto &p) {
            using P = std::decay_t<decltype(p)>;
            if constexpr (std::is_same_v<P, uarch::BimodalPredictor>)
                p.counters_.pop_back();
            else if constexpr (std::is_same_v<P, uarch::GsharePredictor>)
                p.counters_.pop_back();
            else if constexpr (std::is_same_v<P,
                                              uarch::TournamentPredictor>)
                p.chooser_.pop_back();
            else if constexpr (std::is_same_v<P,
                                              uarch::PerceptronPredictor>)
                p.weights_.pop_back();
            else if constexpr (std::is_same_v<P,
                                              uarch::TageLitePredictor>)
                p.tables_.back().pop_back();
        },
        predictor);
}

} // namespace verify
} // namespace speclens
