/**
 * @file
 * Structured invariant-violation records produced by the state auditor.
 *
 * A Violation names the structure it was found in (cache/TLB/predictor
 * instance), the invariant that failed, the location inside the
 * structure (set/way/table index) and a human-readable detail string
 * with the offending values.  An AuditTrail accumulates violations
 * across the audit points of one simulation.
 */

#ifndef SPECLENS_VERIFY_VIOLATION_H
#define SPECLENS_VERIFY_VIOLATION_H

#include <cstdint>
#include <string>
#include <vector>

namespace speclens {
namespace verify {

/** One failed structural invariant. */
struct Violation {
    /// Structure instance, e.g. "l1d" or "predictor/gshare".
    std::string structure;
    /// Invariant identifier, e.g. "stamp-unique" or "counter-range".
    std::string invariant;
    /// Location within the structure, e.g. "set 3 way 1" ("" if global).
    std::string location;
    /// Offending values, e.g. "stamp 7 duplicated".
    std::string detail;
};

/** Render a violation as a single diagnostic line. */
std::string renderViolation(const Violation &violation);

/**
 * Accumulated audit evidence for one simulation.  `audits` counts the
 * audit points that ran; `violations` holds every failed invariant
 * (capped per audit point so a corrupt structure cannot flood memory).
 */
struct AuditTrail {
    std::uint64_t audits = 0;
    std::vector<Violation> violations;

    bool clean() const { return violations.empty(); }
};

} // namespace verify
} // namespace speclens

#endif // SPECLENS_VERIFY_VIOLATION_H
