/**
 * @file
 * Structural invariant prover over live simulator state.
 *
 * The auditor walks the private state of the cache hierarchy, the TLB
 * hierarchy and the branch predictor (it is a friend of each) and
 * proves the invariants catalogued in DESIGN.md section 5f:
 *
 *   cache      tag-domain bounds, no duplicate lines per set, invalid
 *              ways form a suffix, LRU/FIFO stamps in [1, tick] and
 *              unique per set, tree-PLRU node word in domain,
 *              fill-counter bounds, hits <= accesses
 *   way pred   table shape matches the configured kind (one partition
 *              for MRU, two for multi-MRU, none when off), every
 *              predicted way inside the associativity, and the
 *              hit+mispredict total bounded by the cache's hits
 *   TLB        power-of-two page size, L2 reach covers the L1s,
 *              page_walks == l2tlb misses <= itlb+dtlb misses,
 *              plus the cache invariants on each level
 *   predictor  saturating-counter range, history-register width,
 *              table-index domain (size == mask+1) for all six kinds
 *   prefetcher per-slot bit domain, bits only on valid L2 ways, the
 *              accounting identity fills == useful + evicted +
 *              resident bits, stride-table shape/confidence range and
 *              stream-window ring bounds for the configured engine
 *   DRAM       bank-state vector shapes, open-row flags boolean, open
 *              rows inside the address-derived row domain, row hits
 *              bounded by accesses, and the exact busy/budget cycle
 *              identities of the open-page policy
 *   prewarm    the survivor set is a legal end-state: per-set valid
 *              count matches the fill counter and LRU/FIFO stamps
 *              are cyclically increasing from the oldest way
 *
 * Every audit entry point appends Violation records; a clean structure
 * appends nothing.  The *ForTest helpers let the corruption tests poke
 * private state without widening the production API.
 */

#ifndef SPECLENS_VERIFY_STATE_AUDIT_H
#define SPECLENS_VERIFY_STATE_AUDIT_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "uarch/branch_predictor.h"
#include "uarch/cache.h"
#include "uarch/cache_hierarchy.h"
#include "uarch/tlb.h"
#include "verify/violation.h"

namespace speclens {
namespace verify {

class StateAuditor {
  public:
    /// Upper bound on violations appended by one audit* call so a
    /// corrupt structure cannot flood memory with millions of records.
    static constexpr std::size_t kMaxViolationsPerAudit = 64;

    /** Audit one cache (or TLB level) under the given instance name. */
    static void auditCache(const uarch::Cache &cache,
                           std::vector<Violation> &out);

    /**
     * Audit every level of a cache hierarchy, the prefetcher
     * accounting (when a prefetcher is configured) and the DRAM bank
     * state (when the hierarchy has a DRAM model).
     */
    static void auditCaches(const uarch::CacheHierarchy &caches,
                            std::vector<Violation> &out);

    /**
     * Audit the prefetcher state: bit domain, bits only on valid L2
     * ways, the fills == useful + evicted + resident identity, and
     * the engine table shapes (stride confidence, stream ring).
     */
    static void auditPrefetcher(const uarch::CacheHierarchy &caches,
                                std::vector<Violation> &out);

    /** Audit the DRAM bank/row state and cycle identities. */
    static void auditDram(const uarch::DramModel &dram,
                          std::vector<Violation> &out);

    /** Audit TLB geometry, walk counters and the per-level caches. */
    static void auditTlbs(const uarch::TlbHierarchy &tlbs,
                          std::vector<Violation> &out);

    /** Audit whichever predictor the variant holds. */
    static void auditPredictor(const uarch::PredictorVariant &predictor,
                               std::vector<Violation> &out);

    /**
     * Post-prewarm audit: on top of the structural invariants, prove
     * the survivor set is a legal end-state of a pure fill stream
     * (fill counters match per-set valid counts; LRU/FIFO stamps are
     * cyclically increasing from the oldest way).  Only valid at the
     * prewarm -> measurement boundary: demand accesses update stamps
     * but never the cold-fill counters.
     */
    static void auditPrewarm(const uarch::CacheHierarchy &caches,
                             const uarch::TlbHierarchy &tlbs,
                             std::vector<Violation> &out);

    /** Full structural audit of one simulation's state. */
    static void auditAll(const uarch::CacheHierarchy &caches,
                         const uarch::TlbHierarchy &tlbs,
                         const uarch::PredictorVariant &predictor,
                         std::vector<Violation> &out);

    // ---- corruption helpers for the seeded-violation tests ----
    // Each pokes exactly one private field; see tests/verify.

    static void pokeTagForTest(uarch::Cache &cache, std::size_t set,
                               std::size_t way, std::uint64_t tag);
    static void pokeStampForTest(uarch::Cache &cache, std::size_t set,
                                 std::size_t way, std::uint64_t stamp);
    static void pokePlruForTest(uarch::Cache &cache, std::size_t set,
                                std::uint32_t state);
    static void pokeColdFillForTest(uarch::Cache &cache, std::size_t set,
                                    std::uint32_t fills);
    static void pokeHitsForTest(uarch::Cache &cache, std::uint64_t hits);
    static void pokeLineBytesForTest(uarch::Cache &cache,
                                     std::uint32_t line_bytes);
    static void pokePageWalksForTest(uarch::TlbHierarchy &tlbs,
                                     std::uint64_t walks);
    static uarch::Cache &l1dForTest(uarch::CacheHierarchy &caches);
    static uarch::Cache &dtlbForTest(uarch::TlbHierarchy &tlbs);

    static void pokePrefetchBitForTest(uarch::CacheHierarchy &caches,
                                       std::size_t slot,
                                       std::uint8_t value);
    static void pokePrefetchFillsForTest(uarch::CacheHierarchy &caches,
                                         std::uint64_t fills);
    static void pokeStrideConfidenceForTest(uarch::CacheHierarchy &caches,
                                            std::size_t entry,
                                            std::uint8_t confidence);
    static void pokeStreamNextForTest(uarch::CacheHierarchy &caches,
                                      std::size_t next);
    static void pokeWayPredEntryForTest(uarch::Cache &cache,
                                        std::size_t index,
                                        std::uint32_t way);
    static void pokeWayPredHitsForTest(uarch::Cache &cache,
                                       std::uint64_t hits);
    static void pokeDramOpenRowForTest(uarch::CacheHierarchy &caches,
                                       std::size_t bank,
                                       std::uint64_t row);
    static void pokeDramBusyForTest(uarch::CacheHierarchy &caches,
                                    std::uint64_t busy_cycles);

    static void pokeBimodalCounterForTest(uarch::BimodalPredictor &predictor,
                                          std::size_t index,
                                          std::uint8_t value);
    static void pokeGshareHistoryForTest(uarch::GsharePredictor &predictor,
                                         std::uint64_t history);
    static void pokeChooserCounterForTest(uarch::TournamentPredictor &predictor,
                                          std::size_t index,
                                          std::uint8_t value);
    static void pokePerceptronWeightForTest(uarch::PerceptronPredictor &predictor,
                                            std::size_t row, std::size_t column,
                                            int weight);
    static void pokeTageEntryForTest(uarch::TageLitePredictor &predictor,
                                     std::size_t table, std::size_t index,
                                     std::uint16_t tag, std::int8_t counter,
                                     std::uint8_t useful);
    /** Shrink the predictor's primary table by one entry (any kind). */
    static void shrinkTableForTest(uarch::PredictorVariant &predictor);

  private:
    // Out-of-line helpers that read private structure state; member
    // functions so the friend grants extend to them.
    static void auditBimodal(const char *structure,
                             const uarch::BimodalPredictor &p,
                             std::vector<Violation> &out);
    static void auditGshare(const char *structure,
                            const uarch::GsharePredictor &p,
                            std::vector<Violation> &out);
    static void auditCacheFillState(const uarch::Cache &cache,
                                    std::vector<Violation> &out);
};

} // namespace verify
} // namespace speclens

#endif // SPECLENS_VERIFY_STATE_AUDIT_H
