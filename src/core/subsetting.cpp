/**
 * @file
 * Subset selection implementation.
 */

#include "subsetting.h"

#include <limits>
#include <stdexcept>

#include "stats/kmeans.h"

namespace speclens {
namespace core {

std::string
representativeRuleName(RepresentativeRule rule)
{
    switch (rule) {
      case RepresentativeRule::ShortestLinkage: return "shortest-linkage";
      case RepresentativeRule::Medoid: return "medoid";
    }
    return "unknown";
}

namespace {

/** Representative by the paper's shortest-linkage rule. */
std::size_t
shortestLinkageMember(const SimilarityResult &analysis,
                      const std::vector<std::size_t> &cluster)
{
    std::size_t best = cluster.front();
    double best_height = std::numeric_limits<double>::infinity();
    for (std::size_t leaf : cluster) {
        double h = analysis.dendrogram.leafJoinHeight(leaf);
        if (h < best_height) {
            best_height = h;
            best = leaf;
        }
    }
    return best;
}

/** Representative closest to the cluster centroid in PC space. */
std::size_t
medoidMember(const SimilarityResult &analysis,
             const std::vector<std::size_t> &cluster)
{
    std::size_t dims = analysis.scores.cols();
    std::vector<double> centroid(dims, 0.0);
    for (std::size_t leaf : cluster) {
        auto row = analysis.scores.row(leaf);
        for (std::size_t d = 0; d < dims; ++d)
            centroid[d] += row[d];
    }
    for (double &v : centroid)
        v /= static_cast<double>(cluster.size());

    std::size_t best = cluster.front();
    double best_dist = std::numeric_limits<double>::infinity();
    for (std::size_t leaf : cluster) {
        double dist = stats::distance(analysis.scores.row(leaf), centroid,
                                      analysis.config.metric);
        if (dist < best_dist) {
            best_dist = dist;
            best = leaf;
        }
    }
    return best;
}

} // namespace

SubsetResult
selectSubset(const SimilarityResult &analysis, std::size_t subset_size,
             RepresentativeRule rule,
             const std::vector<suites::BenchmarkInfo> &benchmarks)
{
    std::size_t n = analysis.labels.size();
    if (subset_size < 1 || subset_size > n)
        throw std::invalid_argument("selectSubset: bad subset size");

    SubsetResult out;
    out.cut_height = analysis.dendrogram.heightForClusterCount(subset_size);

    auto clusters = analysis.dendrogram.cutIntoClusters(subset_size);
    for (const auto &cluster : clusters) {
        std::size_t rep;
        if (cluster.size() <= 2) {
            // For singleton and two-member clusters the join height
            // carries no in-cluster information; the medoid rule
            // degenerates too, so take the first (lowest-index) member
            // — for pairs both members are equally representative.
            rep = rule == RepresentativeRule::Medoid && cluster.size() == 2
                      ? medoidMember(analysis, cluster)
                      : cluster.front();
        } else {
            rep = rule == RepresentativeRule::ShortestLinkage
                      ? shortestLinkageMember(analysis, cluster)
                      : medoidMember(analysis, cluster);
        }
        out.representatives.push_back(analysis.labels[rep]);
        std::vector<std::string> names;
        names.reserve(cluster.size());
        for (std::size_t leaf : cluster)
            names.push_back(analysis.labels[leaf]);
        out.clusters.push_back(std::move(names));
    }

    if (!benchmarks.empty()) {
        double total = 0.0, subset = 0.0;
        for (const std::string &label : analysis.labels) {
            total += suites::findBenchmark(benchmarks, label)
                         .profile.dynamic_instructions_billions;
        }
        for (const std::string &label : out.representatives) {
            subset += suites::findBenchmark(benchmarks, label)
                          .profile.dynamic_instructions_billions;
        }
        if (subset > 0.0)
            out.simulation_time_reduction = total / subset;
    }
    return out;
}

SubsetResult
selectSubsetKmeans(const SimilarityResult &analysis,
                   std::size_t subset_size, std::uint64_t seed,
                   const std::vector<suites::BenchmarkInfo> &benchmarks)
{
    std::size_t n = analysis.labels.size();
    if (subset_size < 1 || subset_size > n)
        throw std::invalid_argument("selectSubsetKmeans: bad size");

    stats::KmeansResult clustering =
        stats::kmeans(analysis.scores, subset_size, seed);

    SubsetResult out;
    for (std::size_t c = 0; c < subset_size; ++c) {
        std::vector<std::size_t> cluster = clustering.members(c);
        if (cluster.empty())
            continue; // repaired clusters can transiently be empty
        // Member closest to the centroid represents the cluster.
        std::size_t rep = cluster.front();
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t leaf : cluster) {
            double dist =
                stats::distance(analysis.scores.row(leaf),
                                clustering.centroids.row(c),
                                analysis.config.metric);
            if (dist < best) {
                best = dist;
                rep = leaf;
            }
        }
        out.representatives.push_back(analysis.labels[rep]);
        std::vector<std::string> names;
        for (std::size_t leaf : cluster)
            names.push_back(analysis.labels[leaf]);
        out.clusters.push_back(std::move(names));
    }

    if (!benchmarks.empty()) {
        double total = 0.0, subset = 0.0;
        for (const std::string &label : analysis.labels) {
            total += suites::findBenchmark(benchmarks, label)
                         .profile.dynamic_instructions_billions;
        }
        for (const std::string &label : out.representatives) {
            subset += suites::findBenchmark(benchmarks, label)
                          .profile.dynamic_instructions_billions;
        }
        if (subset > 0.0)
            out.simulation_time_reduction = total / subset;
    }
    return out;
}

} // namespace core
} // namespace speclens
