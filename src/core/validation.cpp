/**
 * @file
 * Subset validation implementation.
 */

#include "validation.h"

#include <algorithm>
#include <stdexcept>

#include "stats/descriptive.h"
#include "stats/rng.h"

namespace speclens {
namespace core {

ValidationResult
validateSubset(const std::vector<suites::BenchmarkInfo> &suite,
               const std::vector<std::string> &subset,
               suites::Category category, const suites::ScoreDatabase &db)
{
    if (subset.empty())
        throw std::invalid_argument("validateSubset: empty subset");

    std::vector<suites::BenchmarkInfo> members;
    members.reserve(subset.size());
    for (const std::string &name : subset)
        members.push_back(suites::findBenchmark(suite, name));

    ValidationResult out;
    std::vector<double> errors;
    for (const suites::CommercialSystem &system : db.systemsFor(category)) {
        SystemValidation v;
        v.system = system.name;
        v.full_score = db.suiteScore(system, suite);
        v.subset_score = db.suiteScore(system, members);
        v.error_pct =
            100.0 * stats::relativeError(v.subset_score, v.full_score);
        errors.push_back(v.error_pct);
        out.per_system.push_back(std::move(v));
    }
    out.avg_error_pct = stats::mean(errors);
    out.max_error_pct = stats::maxValue(errors);
    return out;
}

std::vector<std::string>
randomSubset(const std::vector<suites::BenchmarkInfo> &suite,
             std::size_t size, std::uint64_t seed)
{
    if (size > suite.size())
        throw std::invalid_argument("randomSubset: size > suite");

    // Fisher-Yates over the index vector, take the prefix.
    std::vector<std::size_t> indices(suite.size());
    for (std::size_t i = 0; i < indices.size(); ++i)
        indices[i] = i;
    stats::Rng rng(seed);
    for (std::size_t i = 0; i < size; ++i) {
        std::size_t j = i + rng.below(indices.size() - i);
        std::swap(indices[i], indices[j]);
    }

    std::vector<std::string> out;
    out.reserve(size);
    for (std::size_t i = 0; i < size; ++i)
        out.push_back(suite[indices[i]].name);
    return out;
}

double
averageRandomSubsetError(const std::vector<suites::BenchmarkInfo> &suite,
                         std::size_t size, suites::Category category,
                         const suites::ScoreDatabase &db,
                         std::size_t trials, std::uint64_t seed)
{
    std::vector<double> errors;
    errors.reserve(trials);
    for (std::size_t t = 0; t < trials; ++t) {
        auto subset =
            randomSubset(suite, size, stats::combineSeeds(seed, t));
        errors.push_back(
            validateSubset(suite, subset, category, db).avg_error_pct);
    }
    return stats::mean(errors);
}

} // namespace core
} // namespace speclens
