/**
 * @file
 * Measurement-stability analysis: noise versus signal.
 *
 * The paper's entire methodology rests on an implicit premise: the
 * per-benchmark metric vectors are stable enough that clustering them
 * reflects benchmark identity rather than measurement noise.  On real
 * hardware that is argued from long runs; in SpecLens, where a
 * "measurement" is a finite synthetic-trace simulation, it must be
 * demonstrated.  This module re-measures each benchmark under
 * independent trace seeds and compares the within-benchmark metric
 * variation against the across-benchmark variation — the clustering
 * signal-to-noise ratio.
 */

#ifndef SPECLENS_CORE_STABILITY_H
#define SPECLENS_CORE_STABILITY_H

#include <cstdint>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "suites/benchmark_info.h"
#include "uarch/machine.h"

namespace speclens {
namespace core {

class CampaignStore;

/** Stability of one metric across re-measurements. */
struct MetricStability
{
    Metric metric = Metric::L1dMpki;

    /** Mean within-benchmark standard deviation across seeds. */
    double noise = 0.0;

    /** Across-benchmark standard deviation of per-benchmark means. */
    double signal = 0.0;

    /** Mean magnitude of the metric over all runs (scale reference). */
    double scale = 0.0;

    /** signal / noise; large values justify clustering on the metric. */
    double
    snr() const
    {
        return noise > 0.0 ? signal / noise : 0.0;
    }

    /**
     * A metric is informative when benchmarks actually differ on it:
     * the across-benchmark spread must be a visible fraction of the
     * metric's own scale.  Metrics that are ~constant across the
     * studied benchmarks (e.g. pct_fp within an INT-only suite) carry
     * no clustering weight after z-scoring, so their SNR is
     * irrelevant.
     */
    bool
    informative() const
    {
        return signal > 0.02 * scale && signal > 0.0;
    }
};

/** Full stability study. */
struct StabilityReport
{
    /** One entry per canonical metric, in metricsFor() order. */
    std::vector<MetricStability> metrics;

    /** Seeds (re-measurements) per benchmark. */
    std::size_t trials = 0;

    /** Smallest SNR across informative metrics. */
    double worstSnr() const;
};

/**
 * Measure @p benchmarks on @p machine under @p trials independent
 * trace seeds and report per-metric signal-to-noise.
 *
 * Every (benchmark, trial) re-measurement is independent and seeded by
 * its trial index, so the resampling runs across worker threads with
 * results bit-identical to the serial loop.
 *
 * @param benchmarks At least two benchmarks.
 * @param machine Machine model to measure on.
 * @param trials Independent seeds (>= 2).
 * @param instructions Measured window per run.
 * @param warmup Warm-up window per run.
 * @param jobs Worker threads (0 = one per hardware thread).
 * @param store Optional artifact store; each (benchmark, trial) run
 *        is keyed by its trial-salted window, so a warm store serves
 *        the whole study without simulating.
 */
StabilityReport
analyzeStability(const std::vector<suites::BenchmarkInfo> &benchmarks,
                 const uarch::MachineConfig &machine,
                 std::size_t trials = 5,
                 std::uint64_t instructions = 60'000,
                 std::uint64_t warmup = 15'000,
                 std::size_t jobs = 0,
                 CampaignStore *store = nullptr);

} // namespace core
} // namespace speclens

#endif // SPECLENS_CORE_STABILITY_H
