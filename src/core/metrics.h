/**
 * @file
 * The performance-metric vector measured per (benchmark, machine) pair.
 *
 * Table III of the paper fixes the metric families: cache MPKI, TLB
 * misses per million instructions, branch behaviour, instruction mix
 * and power.  Twenty metrics per machine across seven machines yield
 * the 140-dimensional feature vectors the PCA pipeline consumes
 * (Section III).  Two auxiliary access-rate metrics back the Fig. 10
 * cache study ("PC2 is dominated by data cache accesses") and are not
 * part of the canonical twenty.
 */

#ifndef SPECLENS_CORE_METRICS_H
#define SPECLENS_CORE_METRICS_H

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "uarch/simulation.h"

namespace speclens {
namespace core {

/** Indices of the metrics in a MetricVector. */
enum class Metric : std::size_t {
    L1dMpki = 0,
    L1iMpki,
    L2dMpki,
    L2iMpki,
    L3Mpki,
    DtlbMpmi,
    ItlbMpmi,
    L2tlbMpmi,
    PageWalkMpmi,
    BranchMpki,
    BranchTakenMpki,
    PctLoad,
    PctStore,
    PctBranch,
    PctFp,
    PctSimd,
    PctKernel,
    CorePower,
    LlcPower,
    DramPower,
    // Auxiliary (not part of the canonical 20):
    L1dApki,
    L1iApki,
    // Memory-centric family (prefetcher / way-prediction / DRAM model;
    // zero on machines that leave those features off):
    PrefetchCoverage,
    PrefetchAccuracy,
    PrefetchTimeliness,
    WayPredAccuracy,
    RowBufferHitRate,
    DramBwUtil,
    Count,
};

/** Number of canonical metrics per machine (Table III). */
constexpr std::size_t kCanonicalMetricCount = 20;

/** Total stored metrics including auxiliary access rates. */
constexpr std::size_t kTotalMetricCount =
    static_cast<std::size_t>(Metric::Count);

/** Short name of a metric ("l1d_mpki", "core_power", ...). */
std::string metricName(Metric metric);

/** Metric values for one (benchmark, machine) measurement. */
struct MetricVector
{
    std::array<double, kTotalMetricCount> values{};

    double
    get(Metric metric) const
    {
        return values[static_cast<std::size_t>(metric)];
    }

    void
    set(Metric metric, double value)
    {
        values[static_cast<std::size_t>(metric)] = value;
    }
};

/** Extract the metric vector from a simulation result. */
MetricVector extractMetrics(const uarch::SimulationResult &result);

/**
 * Metric subsets used by the different analyses:
 *  - Canonical: all 20 Table III metrics (main similarity pipeline).
 *  - Branch: branch MPKI / taken MPKI / branch share (Fig. 9).
 *  - DataCache: data-side MPKI + access rates (Fig. 10 left).
 *  - InstrCache: instruction-side MPKI + access rates (Fig. 10 right).
 *  - CacheAll: all cache metrics (Sec. IV-E).
 *  - Tlb: TLB metrics (case studies).
 *  - Power: core/LLC/DRAM power (Fig. 12).
 *  - MemoryCentric: prefetch coverage/accuracy/timeliness, way-
 *    prediction accuracy and DRAM row-buffer/bandwidth behaviour
 *    (the Singh & Awasthi-style memory characterization; only
 *    meaningful on machine variants with those features enabled).
 */
enum class MetricSelection {
    Canonical,
    Branch,
    DataCache,
    InstrCache,
    CacheAll,
    Tlb,
    Power,
    MemoryCentric,
};

/** Metrics included in a selection, in a fixed order. */
std::vector<Metric> metricsFor(MetricSelection selection);

/** Human-readable selection name. */
std::string metricSelectionName(MetricSelection selection);

} // namespace core
} // namespace speclens

#endif // SPECLENS_CORE_METRICS_H
