/**
 * @file
 * Representative input-set selection (Section IV-C, Table VII).
 *
 * For every multi-input benchmark the paper picks the input whose
 * characteristics sit closest to the aggregate (all-inputs) behaviour.
 * The analysis here reproduces that: input variants are characterized
 * alongside their parent benchmarks, a joint PCA space is fitted, and
 * for each group the variant nearest the group centroid (the aggregate
 * benchmark) is selected.
 */

#ifndef SPECLENS_CORE_INPUT_SET_ANALYSIS_H
#define SPECLENS_CORE_INPUT_SET_ANALYSIS_H

#include <string>
#include <vector>

#include "core/characterization.h"
#include "core/similarity.h"
#include "suites/input_sets.h"

namespace speclens {
namespace core {

/** Selection result for one multi-input benchmark. */
struct RepresentativeInput
{
    std::string benchmark;        //!< Parent benchmark name.
    int input_index = 1;          //!< Chosen input set (1-based).
    std::string variant_name;     //!< "<benchmark>#<k>".
    double distance_to_aggregate = 0.0; //!< PC-space distance.

    /**
     * Tightness of the group: largest pairwise PC-space distance
     * among the benchmark's inputs.  Small values are the paper's
     * "input sets have very similar characteristics" finding.
     */
    double group_spread = 0.0;
};

/** Full input-set study over a set of groups. */
struct InputSetAnalysis
{
    /** Joint similarity analysis over all variants (Figs. 7/8). */
    SimilarityResult similarity;

    /** One selection per multi-input benchmark (Table VII). */
    std::vector<RepresentativeInput> representatives;

    /**
     * Largest pairwise PC-space distance between variants of the same
     * benchmark, over all groups — used to verify that same-benchmark
     * inputs cluster tightly relative to cross-benchmark distances.
     */
    double max_within_group_spread = 0.0;

    /** Median PC-space distance between different benchmarks. */
    double median_cross_benchmark_distance = 0.0;
};

/**
 * Run the input-set study.
 *
 * @param characterizer Measurement campaign (shared cache).
 * @param groups Benchmark groups with variants (from
 *        suites::inputSetGroupsInt()/Fp()).
 * @param config Similarity pipeline configuration.
 */
InputSetAnalysis
analyzeInputSets(Characterizer &characterizer,
                 const std::vector<suites::InputSetGroup> &groups,
                 const SimilarityConfig &config = {});

} // namespace core
} // namespace speclens

#endif // SPECLENS_CORE_INPUT_SET_ANALYSIS_H
