/**
 * @file
 * Plain-text rendering of tables, scatter plots and stacked bars.
 *
 * The bench harness regenerates every table and figure of the paper as
 * text; these helpers give them a consistent look: fixed-width tables
 * with separators, ASCII scatter plots with point labels (for the PC
 * workload-space figures) and horizontal stacked bars (for the CPI
 * stacks of Fig. 1).
 */

#ifndef SPECLENS_CORE_REPORT_H
#define SPECLENS_CORE_REPORT_H

#include <string>
#include <vector>

namespace speclens {
namespace core {

/** Fixed-width text table builder. */
class TextTable
{
  public:
    /** @param headers Column headers (fixes the column count). */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row; must match the column count. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision decimals. */
    static std::string num(double value, int precision = 2);

    /** Render with column separators and a header rule. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** One labelled point of a scatter plot. */
struct ScatterPoint
{
    double x = 0.0;
    double y = 0.0;
    std::string label;
    char glyph = 'o'; //!< Marker drawn at the point ('o', 'x', ...).
};

/**
 * ASCII scatter plot on a width x height character grid, with axis
 * ranges annotated and a legend mapping glyphs to the point labels
 * drawn at the margin.
 */
std::string renderScatter(const std::vector<ScatterPoint> &points,
                          const std::string &x_label,
                          const std::string &y_label, int width = 72,
                          int height = 24);

/**
 * Horizontal stacked bar chart: one row per entry, segments scaled to
 * @p max_total across @p width characters.  Segment glyphs cycle
 * through the provided alphabet; a legend line maps glyphs to
 * component names.
 */
std::string
renderStackedBars(const std::vector<std::string> &row_labels,
                  const std::vector<std::vector<double>> &segments,
                  const std::vector<std::string> &segment_names,
                  int width = 60);

} // namespace core
} // namespace speclens

#endif // SPECLENS_CORE_REPORT_H
