/**
 * @file
 * Pinned performance-trajectory runner and BENCH_<pr>.json renderer.
 */

#include "perf_trajectory.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <vector>

#include "core/analysis_session.h"
#include "core/characterization.h"
#include "stats/distance.h"
#include "stats/fingerprint.h"
#include "stats/pca.h"
#include "suites/machines.h"
#include "suites/spec2017.h"
#include "uarch/simulation.h"

namespace speclens {
namespace core {

namespace {

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point start)
{
    return std::chrono::duration<double>(Clock::now() - start).count();
}

/**
 * Feed every field of one simulation result — all event counts plus
 * every derived double by IEEE-754 bit pattern — so the campaign
 * fingerprint changes if any result changes in any bit.
 */
void
hashResult(stats::Fingerprinter &fp, const uarch::SimulationResult &r)
{
    const uarch::PerfCounters &c = r.counters;
    fp.u64(c.instructions);
    fp.u64(c.loads);
    fp.u64(c.stores);
    fp.u64(c.branches);
    fp.u64(c.taken_branches);
    fp.u64(c.fp_ops);
    fp.u64(c.simd_ops);
    fp.u64(c.kernel_instructions);
    fp.u64(c.l1d_accesses);
    fp.u64(c.l1d_misses);
    fp.u64(c.l1i_accesses);
    fp.u64(c.l1i_misses);
    fp.u64(c.l2d_accesses);
    fp.u64(c.l2d_misses);
    fp.u64(c.l2i_accesses);
    fp.u64(c.l2i_misses);
    fp.u64(c.l3_accesses);
    fp.u64(c.l3_misses);
    fp.u64(c.dtlb_accesses);
    fp.u64(c.dtlb_misses);
    fp.u64(c.itlb_accesses);
    fp.u64(c.itlb_misses);
    fp.u64(c.l2tlb_misses);
    fp.u64(c.page_walks);
    fp.u64(c.branch_mispredictions);
    fp.u64(c.prefetch_fills);
    fp.u64(c.prefetch_useful);
    fp.u64(c.prefetch_evicted_unused);
    fp.u64(c.way_pred_hits);
    fp.u64(c.way_pred_mispredicts);
    fp.u64(c.dram_accesses);
    fp.u64(c.dram_row_hits);
    fp.u64(c.dram_busy_cycles);
    fp.u64(c.dram_budget_cycles);
    for (double v : r.cpi_stack.components())
        fp.f64(v);
    fp.f64(r.power.core_watts);
    fp.f64(r.power.llc_watts);
    fp.f64(r.power.dram_watts);
}

/** 16-hex-digit rendering shared with the artifact store's file names. */
std::string
hex16(std::uint64_t value)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

/** Finite double as a JSON number ("%.9g"; non-finite clamps to 0). */
std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "0";
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.9g", value);
    return buf;
}

const char *
yesNo(bool value)
{
    return value ? "yes" : "NO";
}

} // namespace

TrajectoryResult
runTrajectory(const TrajectoryConfig &config)
{
    TrajectoryResult out;
    out.config = config;

    const std::vector<suites::BenchmarkInfo> &benchmarks =
        suites::spec2017();
    const std::vector<uarch::MachineConfig> &machines =
        suites::profilingMachines();
    out.benchmarks = benchmarks.size();
    out.machines = machines.size();

    CharacterizationConfig ccfg;
    ccfg.instructions = config.instructions;
    ccfg.warmup = config.warmup;
    ccfg.seed_salt = config.seed_salt;
    ccfg.jobs = 1; // Single-threaded by contract: wall-clock per stage
                   // is the artifact, so parallelism would hide the
                   // per-simulation cost the trajectory tracks.

    // -- Stage 1: fused streaming campaign (the shipped pipeline). --
    Characterizer fused(machines, ccfg);
    Clock::time_point t0 = Clock::now();
    fused.prepare(benchmarks, /*jobs=*/1);
    out.fused_seconds = secondsSince(t0);

    out.simulations = fused.simulationsRun();
    out.records_per_simulation = config.warmup + config.instructions;
    out.records_total =
        out.records_per_simulation * static_cast<std::uint64_t>(out.simulations);
    if (out.fused_seconds > 0.0) {
        out.simulations_per_second =
            static_cast<double>(out.simulations) / out.fused_seconds;
        out.records_per_second =
            static_cast<double>(out.records_total) / out.fused_seconds;
        out.speedup_vs_seed =
            out.records_per_second / kSeedRecordsPerSecond;
    }

    stats::Fingerprinter campaign_fp;
    campaign_fp.tag("speclens-campaign-results-v1");
    for (const suites::BenchmarkInfo &b : benchmarks)
        for (std::size_t m = 0; m < machines.size(); ++m)
            hashResult(campaign_fp, fused.simulation(b, m));
    out.campaign_fingerprint = campaign_fp.value();

    // -- Stage 2: materialized-window baseline, then parity check. --
    uarch::SimulationConfig sim = ccfg.simulationConfig();
    std::vector<uarch::SimulationResult> materialized;
    materialized.reserve(benchmarks.size() * machines.size());
    t0 = Clock::now();
    for (const suites::BenchmarkInfo &b : benchmarks)
        for (const uarch::MachineConfig &machine : machines)
            materialized.push_back(
                uarch::simulateMaterialized(b.profile, machine, sim));
    out.materialized_seconds = secondsSince(t0);
    if (out.fused_seconds > 0.0)
        out.speedup_vs_materialized =
            out.materialized_seconds / out.fused_seconds;

    out.parity_bit_identical = true;
    std::size_t pair = 0;
    for (const suites::BenchmarkInfo &b : benchmarks)
        for (std::size_t m = 0; m < machines.size(); ++m)
            if (!uarch::bitIdentical(materialized[pair++],
                                     fused.simulation(b, m)))
                out.parity_bit_identical = false;

    // -- Stage 3: stats pipeline over the campaign's feature matrix. --
    t0 = Clock::now();
    stats::Matrix features = fused.featureMatrix(benchmarks);
    stats::PcaResult pca = stats::fitPca(features);
    stats::Matrix distances = stats::pairwiseDistances(pca.scores);
    out.stats_seconds = secondsSince(t0);

    out.feature_rows = features.rows();
    out.feature_cols = features.cols();
    out.pca_retained = pca.retained;
    out.pca_variance_covered = pca.variance_covered;

    stats::Fingerprinter stats_fp;
    stats_fp.tag("speclens-stats-results-v1");
    stats_fp.u64(features.rows());
    stats_fp.u64(features.cols());
    for (double v : features.data())
        stats_fp.f64(v);
    for (double v : pca.eigenvalues)
        stats_fp.f64(v);
    for (double v : distances.data())
        stats_fp.f64(v);
    out.stats_fingerprint = stats_fp.value();

    // -- Stage 4: artifact-store reuse proof (optional). --
    if (!config.store_dir.empty()) {
        out.store_checked = true;
        SessionConfig scfg;
        scfg.machines = machines;
        scfg.characterization = ccfg;
        scfg.store_dir = config.store_dir;

        {
            AnalysisSession cold(scfg);
            t0 = Clock::now();
            cold.characterizer().prepare(benchmarks, /*jobs=*/1);
            out.store_cold_seconds = secondsSince(t0);
        }

        AnalysisSession warm(scfg);
        t0 = Clock::now();
        warm.characterizer().prepare(benchmarks, /*jobs=*/1);
        out.store_warm_seconds = secondsSince(t0);
        out.warm_simulations_run = warm.characterizer().simulationsRun();

        std::size_t pairs = benchmarks.size() * machines.size();
        if (pairs > 0)
            out.warm_hit_rate =
                1.0 - static_cast<double>(out.warm_simulations_run) /
                          static_cast<double>(pairs);

        out.warm_bit_identical = true;
        for (const suites::BenchmarkInfo &b : benchmarks)
            for (std::size_t m = 0; m < machines.size(); ++m)
                if (!uarch::bitIdentical(warm.characterizer().simulation(b, m),
                                         fused.simulation(b, m)))
                    out.warm_bit_identical = false;
    }

    return out;
}

std::string
renderTrajectoryFacts(const TrajectoryResult &r)
{
    std::ostringstream os;
    os << "bench trajectory: suite=cpu2017 benchmarks=" << r.benchmarks
       << " machines=" << r.machines << "\n";
    os << "window: instructions=" << r.config.instructions
       << " warmup=" << r.config.warmup
       << " seed_salt=" << r.config.seed_salt << " jobs=1\n";
    os << "campaign: simulations=" << r.simulations
       << " records=" << r.records_total
       << " fingerprint=" << hex16(r.campaign_fingerprint) << "\n";
    os << "parity: fused-vs-materialized bit-identical: "
       << yesNo(r.parity_bit_identical) << "\n";
    os << "stats: rows=" << r.feature_rows << " cols=" << r.feature_cols
       << " pca_retained=" << r.pca_retained
       << " fingerprint=" << hex16(r.stats_fingerprint) << "\n";
    if (r.store_checked)
        os << "store: warm rerun simulations=" << r.warm_simulations_run
           << " bit-identical: " << yesNo(r.warm_bit_identical) << "\n";
    else
        os << "store: skipped (no store directory)\n";
    return os.str();
}

std::string
renderTrajectoryJson(const TrajectoryResult &r)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": \"speclens-bench-trajectory-v2\",\n";
    os << "  \"pr\": " << r.config.pr << ",\n";
    os << "  \"seed_baseline\": {\n";
    os << "    \"records_per_second\": "
       << jsonNumber(kSeedRecordsPerSecond) << ",\n";
    os << "    \"simulations_per_second\": "
       << jsonNumber(kSeedSimulationsPerSecond) << "\n";
    os << "  },\n";
    os << "  \"config\": {\n";
    os << "    \"suite\": \"cpu2017\",\n";
    os << "    \"benchmarks\": " << r.benchmarks << ",\n";
    os << "    \"machines\": " << r.machines << ",\n";
    os << "    \"instructions\": " << r.config.instructions << ",\n";
    os << "    \"warmup\": " << r.config.warmup << ",\n";
    os << "    \"seed_salt\": " << r.config.seed_salt << ",\n";
    os << "    \"jobs\": 1\n";
    os << "  },\n";
    os << "  \"campaign\": {\n";
    os << "    \"simulations\": " << r.simulations << ",\n";
    os << "    \"records_per_simulation\": " << r.records_per_simulation
       << ",\n";
    os << "    \"records_total\": " << r.records_total << ",\n";
    os << "    \"fingerprint\": \"" << hex16(r.campaign_fingerprint)
       << "\",\n";
    os << "    \"fused_seconds\": " << jsonNumber(r.fused_seconds) << ",\n";
    os << "    \"materialized_seconds\": "
       << jsonNumber(r.materialized_seconds) << ",\n";
    os << "    \"speedup_vs_materialized\": "
       << jsonNumber(r.speedup_vs_materialized) << ",\n";
    os << "    \"speedup_vs_seed\": " << jsonNumber(r.speedup_vs_seed)
       << ",\n";
    os << "    \"simulations_per_second\": "
       << jsonNumber(r.simulations_per_second) << ",\n";
    os << "    \"records_per_second\": " << jsonNumber(r.records_per_second)
       << ",\n";
    os << "    \"parity_bit_identical\": "
       << (r.parity_bit_identical ? "true" : "false") << "\n";
    os << "  },\n";
    os << "  \"stats\": {\n";
    os << "    \"seconds\": " << jsonNumber(r.stats_seconds) << ",\n";
    os << "    \"feature_rows\": " << r.feature_rows << ",\n";
    os << "    \"feature_cols\": " << r.feature_cols << ",\n";
    os << "    \"pca_retained\": " << r.pca_retained << ",\n";
    os << "    \"pca_variance_covered\": "
       << jsonNumber(r.pca_variance_covered) << ",\n";
    os << "    \"fingerprint\": \"" << hex16(r.stats_fingerprint) << "\"\n";
    os << "  },\n";
    os << "  \"store\": {\n";
    os << "    \"checked\": " << (r.store_checked ? "true" : "false");
    if (r.store_checked) {
        os << ",\n";
        os << "    \"cold_seconds\": " << jsonNumber(r.store_cold_seconds)
           << ",\n";
        os << "    \"warm_seconds\": " << jsonNumber(r.store_warm_seconds)
           << ",\n";
        os << "    \"warm_simulations_run\": " << r.warm_simulations_run
           << ",\n";
        os << "    \"warm_hit_rate\": " << jsonNumber(r.warm_hit_rate)
           << ",\n";
        os << "    \"warm_bit_identical\": "
           << (r.warm_bit_identical ? "true" : "false") << "\n";
    } else {
        os << "\n";
    }
    os << "  }\n";
    os << "}\n";
    return os.str();
}

std::string
trajectoryArtifactName(int pr)
{
    return "BENCH_" + std::to_string(pr) + ".json";
}

} // namespace core
} // namespace speclens
