/**
 * @file
 * Subset representativeness validation (Section IV-B, Figs. 5-6,
 * Table VI).
 *
 * A subset is validated by comparing the geometric-mean speedup of its
 * members against the geometric-mean speedup of the full sub-suite on
 * each commercial system in the score database; the per-system relative
 * error and its average/maximum are the numbers Figs. 5-6 plot and
 * Table VI summarises against random subsets.
 */

#ifndef SPECLENS_CORE_VALIDATION_H
#define SPECLENS_CORE_VALIDATION_H

#include <cstdint>
#include <string>
#include <vector>

#include "suites/benchmark_info.h"
#include "suites/score_database.h"

namespace speclens {
namespace core {

/** One system's subset-vs-full comparison. */
struct SystemValidation
{
    std::string system;
    double full_score = 0.0;    //!< Geomean speedup of all benchmarks.
    double subset_score = 0.0;  //!< Geomean speedup of the subset.
    double error_pct = 0.0;     //!< 100 * |subset - full| / full.
};

/** Validation across all systems of a category. */
struct ValidationResult
{
    std::vector<SystemValidation> per_system;
    double avg_error_pct = 0.0;
    double max_error_pct = 0.0;
};

/**
 * Validate @p subset against the full @p suite on every system with
 * submissions for @p category.
 *
 * @param suite Full sub-suite.
 * @param subset Names of the subset members (must be in @p suite).
 * @param category Determines which systems have submissions.
 * @param db Score database.
 */
ValidationResult
validateSubset(const std::vector<suites::BenchmarkInfo> &suite,
               const std::vector<std::string> &subset,
               suites::Category category,
               const suites::ScoreDatabase &db);

/**
 * Uniformly random subset of @p size benchmark names (deterministic in
 * @p seed); the Table VI baseline.
 */
std::vector<std::string>
randomSubset(const std::vector<suites::BenchmarkInfo> &suite,
             std::size_t size, std::uint64_t seed);

/**
 * Average validation error over @p trials random subsets — an
 * extension of Table VI's two fixed random sets that characterises the
 * whole random-subset distribution.
 */
double
averageRandomSubsetError(const std::vector<suites::BenchmarkInfo> &suite,
                         std::size_t size, suites::Category category,
                         const suites::ScoreDatabase &db,
                         std::size_t trials, std::uint64_t seed);

} // namespace core
} // namespace speclens

#endif // SPECLENS_CORE_VALIDATION_H
