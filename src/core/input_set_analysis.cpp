/**
 * @file
 * Input-set analysis implementation.
 */

#include "input_set_analysis.h"

#include <algorithm>

#include "stats/descriptive.h"
#include "stats/distance.h"

namespace speclens {
namespace core {

InputSetAnalysis
analyzeInputSets(Characterizer &characterizer,
                 const std::vector<suites::InputSetGroup> &groups,
                 const SimilarityConfig &config)
{
    std::vector<suites::BenchmarkInfo> all =
        suites::flattenGroups(groups);

    InputSetAnalysis out;
    out.similarity = analyzeSimilarity(
        characterizer.featureMatrix(all),
        suites::benchmarkNames(all), config);

    const SimilarityResult &sim = out.similarity;

    // Representative per multi-input group: nearest to the group
    // centroid in PC space (the "aggregated benchmark").
    for (const suites::InputSetGroup &group : groups) {
        if (group.inputs.size() < 2)
            continue;

        std::vector<std::size_t> rows;
        rows.reserve(group.inputs.size());
        for (const suites::BenchmarkInfo &input : group.inputs)
            rows.push_back(sim.indexOf(input.name));

        std::size_t dims = sim.scores.cols();
        std::vector<double> centroid(dims, 0.0);
        for (std::size_t r : rows) {
            auto row = sim.scores.row(r);
            for (std::size_t d = 0; d < dims; ++d)
                centroid[d] += row[d];
        }
        for (double &v : centroid)
            v /= static_cast<double>(rows.size());

        RepresentativeInput rep;
        rep.benchmark = group.benchmark.name;
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t k = 0; k < rows.size(); ++k) {
            double dist = stats::distance(sim.scores.row(rows[k]),
                                          centroid, config.metric);
            if (dist < best) {
                best = dist;
                rep.input_index = static_cast<int>(k) + 1;
                rep.variant_name = group.inputs[k].name;
                rep.distance_to_aggregate = dist;
            }
        }

        for (std::size_t a = 0; a < rows.size(); ++a)
            for (std::size_t b = a + 1; b < rows.size(); ++b)
                rep.group_spread = std::max(
                    rep.group_spread, sim.pcDistance(rows[a], rows[b]));

        out.max_within_group_spread =
            std::max(out.max_within_group_spread, rep.group_spread);
        out.representatives.push_back(std::move(rep));
    }

    // Cross-benchmark distance scale for context: distance between the
    // first variant of every pair of distinct benchmarks.
    std::vector<double> cross;
    for (std::size_t i = 0; i < groups.size(); ++i) {
        std::size_t ri = sim.indexOf(groups[i].inputs.front().name);
        for (std::size_t j = i + 1; j < groups.size(); ++j) {
            std::size_t rj = sim.indexOf(groups[j].inputs.front().name);
            cross.push_back(sim.pcDistance(ri, rj));
        }
    }
    if (!cross.empty())
        out.median_cross_benchmark_distance = stats::median(cross);
    return out;
}

} // namespace core
} // namespace speclens
