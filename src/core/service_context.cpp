/**
 * @file
 * Service-context implementation.
 */

#include "service_context.h"

#include <cstdio>
#include <utility>

#include "obs/manifest.h"
#include "obs/metrics.h"
#include "stats/fingerprint.h"
#include "suites/emerging.h"
#include "suites/machines.h"
#include "suites/spec2006.h"
#include "suites/spec2017.h"

namespace speclens {
namespace core {

namespace {

std::string
hex16(std::uint64_t value)
{
    char buffer[17];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(value));
    return std::string(buffer);
}

} // namespace

ServiceContext::ServiceContext(ServiceConfig config)
    : config_(std::move(config)),
      cpu2017_(suites::spec2017()),
      cpu2006_(suites::spec2006()),
      emerging_(suites::emergingBenchmarks()),
      profiling_machines_(suites::profilingMachines()),
      sensitivity_machines_(suites::sensitivityMachines()),
      memory_machines_(suites::memoryCentricMachines())
{
    // Name index over the snapshots; first-listed suite wins on a
    // (nonexistent today) name collision.  Pointers stay valid: the
    // vectors are never touched again.
    auto indexSuite = [&](const std::vector<suites::BenchmarkInfo> &list) {
        for (const suites::BenchmarkInfo &benchmark : list)
            by_name_.emplace(benchmark.name, &benchmark);
    };
    indexSuite(cpu2017_);
    indexSuite(cpu2006_);
    indexSuite(emerging_);

    // Until a Characterizer is pooled the fingerprint covers the
    // profiling set; the first characterizerFor() repins it to the
    // actual campaign machines (for a batch session: identical to the
    // pre-split AnalysisSession computation).
    fingerprintConfig(profiling_machines_);

    if (!config_.store_dir.empty()) {
        store_ = std::make_shared<CampaignStore>(
            config_.store_dir, config_.store_lru_capacity);
    }
}

ServiceContext::~ServiceContext()
{
    if (!store_)
        return;
    std::fprintf(stderr, "%s\n", summary().c_str());

    StoreCounters c = store_->counters();
    obs::Manifest manifest;
    manifest.engine_version = kStoreEngineVersion;
    manifest.config_fingerprint = configFingerprint();
    manifest.run = {
        {"store_dir", store_->directory()},
        {"machines", std::to_string(primary_machine_count_ != 0
                                        ? primary_machine_count_
                                        : profiling_machines_.size())},
        {"metrics", obs::kMetricsEnabled ? "on" : "off"},
    };
    manifest.totals = {
        {"entries", store_->entryCount()},
        {"hits", c.hits},
        {"misses", c.misses},
        {"simulations", c.computed},
        {"saves", c.saves},
        // Prefetch fills are not demand misses (SL014); exporting the
        // process-wide total makes that separation artifact-checkable.
        {"prefetch_fills",
         obs::Registry::global().counter("uarch.prefetch.fills").value()},
    };
    manifest.rejected = {
        {"corrupt", c.corrupt},
        {"stale_version", c.stale_version},
        {"fingerprint_mismatch", c.fingerprint_mismatch},
        {"orphaned_temp", c.orphaned_temp},
    };
    manifest.metrics = obs::Registry::global().snapshot();
    obs::writeManifest(store_->directory() + "/" +
                           obs::kManifestFileName,
                       manifest);
}

const suites::BenchmarkInfo *
ServiceContext::findBenchmark(const std::string &name) const
{
    auto it = by_name_.find(name);
    return it == by_name_.end() ? nullptr : it->second;
}

std::uint64_t
ServiceContext::machineSetFingerprint(
    const std::vector<uarch::MachineConfig> &machines)
{
    stats::Fingerprinter fp;
    fp.tag("speclens.machineset");
    fp.u64(machines.size());
    for (const uarch::MachineConfig &machine : machines)
        machine.hashInto(fp);
    return fp.value();
}

void
ServiceContext::fingerprintConfig(
    const std::vector<uarch::MachineConfig> &machines)
{
    // Identical tag/order to the pre-split AnalysisSession: anything
    // that changes what a campaign measures must change this, so
    // manifests from different configurations never look comparable.
    stats::Fingerprinter fp;
    fp.tag("speclens.session");
    fp.u64(kStoreEngineVersion);
    config_.characterization.hashInto(fp);
    fp.u64(machines.size());
    for (const uarch::MachineConfig &machine : machines)
        machine.hashInto(fp);
    config_fingerprint_ = hex16(fp.value());
}

Characterizer &
ServiceContext::characterizerFor(
    const std::vector<uarch::MachineConfig> &machines)
{
    const std::uint64_t key = machineSetFingerprint(machines);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = characterizers_.find(key);
    if (it != characterizers_.end())
        return *it->second;

    auto characterizer =
        std::make_unique<Characterizer>(machines,
                                        config_.characterization);
    if (store_)
        characterizer->attachStore(store_);
    if (!pool_) {
        pool_ = std::make_unique<ThreadPool>(
            resolveJobCount(config_.characterization.jobs));
    }
    characterizer->setWorkerPool(pool_.get());

    if (characterizers_.empty()) {
        // First pooled set = the primary campaign: pin the manifest
        // fingerprint to it (batch-compat, see header).
        primary_machine_count_ = machines.size();
        fingerprintConfig(machines);
    }
    return *characterizers_.emplace(key, std::move(characterizer))
                .first->second;
}

ThreadPool &
ServiceContext::workerPool()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!pool_) {
        pool_ = std::make_unique<ThreadPool>(
            resolveJobCount(config_.characterization.jobs));
    }
    return *pool_;
}

std::size_t
ServiceContext::simulationsRun() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t total = 0;
    for (const auto &entry : characterizers_)
        total += entry.second->simulationsRun();
    return total;
}

std::string
ServiceContext::summary() const
{
    if (!store_)
        return "[speclens-store] disabled";
    StoreCounters c = store_->counters();
    std::size_t rejected = c.corrupt + c.stale_version +
                           c.fingerprint_mismatch + c.orphaned_temp;
    // `computed` counts every simulation executed against the store,
    // including ones run outside the Characterizer (stability trials,
    // SimPoint probes and phased ground-truth runs).
    return "[speclens-store] dir=" + store_->directory() +
           " entries=" + std::to_string(store_->entryCount()) +
           " hits=" + std::to_string(c.hits) +
           " simulations=" + std::to_string(c.computed) +
           " saves=" + std::to_string(c.saves) +
           " rejected=" + std::to_string(rejected);
}

const std::string &
ServiceContext::configFingerprint() const
{
    return config_fingerprint_;
}

} // namespace core
} // namespace speclens
