/**
 * @file
 * Suite-balance analyses (Section V): CPU2017-vs-CPU2006 coverage,
 * removed-benchmark coverage, power-spectrum comparison and the
 * emerging-workload case studies.
 */

#ifndef SPECLENS_CORE_BALANCE_H
#define SPECLENS_CORE_BALANCE_H

#include <string>
#include <vector>

#include "core/characterization.h"
#include "core/similarity.h"
#include "stats/geometry.h"

namespace speclens {
namespace core {

/** Coverage of one PC plane by two suites (Fig. 11 / Fig. 12). */
struct PlaneCoverage
{
    std::size_t pc_x = 0;    //!< PC index on the x axis (0-based).
    std::size_t pc_y = 1;    //!< PC index on the y axis.
    double area_a = 0.0;     //!< Convex-hull area of suite A.
    double area_b = 0.0;     //!< Convex-hull area of suite B.
    double area_ratio = 0.0; //!< area_a / area_b.

    /** Fraction of suite-A points outside suite B's hull. */
    double a_outside_b = 0.0;
};

/** Two-suite comparison in a joint PC space. */
struct SuiteComparison
{
    /** Joint similarity analysis over both suites. */
    SimilarityResult similarity;

    /** Row indices of suite A / suite B in the joint analysis. */
    std::vector<std::size_t> rows_a;
    std::vector<std::size_t> rows_b;

    /** Coverage of the PC1-PC2 and PC3-PC4 planes (paper's Fig. 11). */
    PlaneCoverage pc12;
    PlaneCoverage pc34;
};

/**
 * Compare two benchmark sets in a joint feature space.
 *
 * @param characterizer Shared measurement campaign.
 * @param suite_a First suite (e.g. CPU2017; numerator of ratios).
 * @param suite_b Second suite (e.g. CPU2006).
 * @param selection Metric subset (Canonical for Fig. 11, Power for
 *        Fig. 12).
 * @param machine_indices Machines to use (all by default; the three
 *        RAPL machines for the power study).
 * @param config Similarity pipeline configuration.
 */
SuiteComparison
compareSuites(Characterizer &characterizer,
              const std::vector<suites::BenchmarkInfo> &suite_a,
              const std::vector<suites::BenchmarkInfo> &suite_b,
              MetricSelection selection = MetricSelection::Canonical,
              const std::vector<std::size_t> &machine_indices = {},
              const SimilarityConfig &config = {});

/** Coverage verdict for one candidate benchmark. */
struct CoverageVerdict
{
    std::string benchmark;      //!< Candidate (e.g. a removed CPU2006
                                //!< benchmark or an emerging workload).
    double nn_distance = 0.0;   //!< Distance to nearest reference point.
    std::string nearest;        //!< Nearest reference benchmark.
    bool covered = false;       //!< nn_distance within the threshold.
};

/**
 * Test which of @p candidates are covered by the @p reference suite:
 * a candidate is covered when its nearest reference neighbour in the
 * joint PC space is no further than @p threshold_factor times the
 * median nearest-neighbour distance within the reference suite itself.
 *
 * This operationalises the paper's "performance characteristics are
 * not covered by the CPU2017 benchmarks" judgement (Sections V-B,
 * V-D/E/F).
 */
std::vector<CoverageVerdict>
coverageAnalysis(Characterizer &characterizer,
                 const std::vector<suites::BenchmarkInfo> &reference,
                 const std::vector<suites::BenchmarkInfo> &candidates,
                 double threshold_factor = 3.0,
                 const SimilarityConfig &config = {});

} // namespace core
} // namespace speclens

#endif // SPECLENS_CORE_BALANCE_H
