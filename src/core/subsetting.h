/**
 * @file
 * Representative-subset selection (Section IV-A, Table V).
 *
 * The paper draws a vertical line through a sub-suite's dendrogram at
 * the linkage distance that yields the desired number of clusters, then
 * picks one representative per cluster — "the benchmark with the
 * shortest linkage distance" for clusters of more than two members.
 * Both that rule and a medoid rule (closest to the cluster centroid in
 * PC space) are implemented; the methodology-ablation bench compares
 * them.
 */

#ifndef SPECLENS_CORE_SUBSETTING_H
#define SPECLENS_CORE_SUBSETTING_H

#include <string>
#include <vector>

#include "core/similarity.h"
#include "suites/benchmark_info.h"

namespace speclens {
namespace core {

/** How to pick the representative inside a cluster. */
enum class RepresentativeRule {
    ShortestLinkage, //!< Earliest-merging member (the paper's rule).
    Medoid,          //!< Member closest to the cluster centroid.
};

/** Human-readable rule name. */
std::string representativeRuleName(RepresentativeRule rule);

/** A selected subset. */
struct SubsetResult
{
    /** One representative per cluster, in cluster order. */
    std::vector<std::string> representatives;

    /** Full clusters (benchmark names), aligned with representatives. */
    std::vector<std::vector<std::string>> clusters;

    /** Linkage distance at which the dendrogram was cut. */
    double cut_height = 0.0;

    /**
     * Simulation-time reduction factor: total dynamic instruction
     * count of the whole sub-suite divided by that of the subset
     * (the "5.6x for SPECspeed INT" numbers of Section IV-A).
     * Zero when instruction counts were not supplied.
     */
    double simulation_time_reduction = 0.0;
};

/**
 * Select @p subset_size representatives from a similarity analysis.
 *
 * @param analysis Clustered sub-suite.
 * @param subset_size Number of clusters / representatives (3 in the
 *        paper's Table V).
 * @param rule In-cluster representative selection rule.
 * @param benchmarks Optional benchmark records (matched by name) used
 *        to compute the simulation-time reduction; pass an empty list
 *        to skip.
 */
SubsetResult
selectSubset(const SimilarityResult &analysis, std::size_t subset_size,
             RepresentativeRule rule = RepresentativeRule::ShortestLinkage,
             const std::vector<suites::BenchmarkInfo> &benchmarks = {});

/**
 * Alternative subsetting via k-means in PC space (the other common
 * choice in the workload-similarity literature); each cluster is
 * represented by the member closest to its centroid.  cut_height is 0
 * in the result (no dendrogram is involved).  Used by the clustering-
 * method ablation.
 */
SubsetResult selectSubsetKmeans(
    const SimilarityResult &analysis, std::size_t subset_size,
    std::uint64_t seed = 1,
    const std::vector<suites::BenchmarkInfo> &benchmarks = {});

} // namespace core
} // namespace speclens

#endif // SPECLENS_CORE_SUBSETTING_H
