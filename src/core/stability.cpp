/**
 * @file
 * Stability analysis implementation.
 */

#include "stability.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/artifact_store.h"
#include "core/parallel.h"
#include "stats/descriptive.h"
#include "uarch/simulation.h"

namespace speclens {
namespace core {

double
StabilityReport::worstSnr() const
{
    double worst = std::numeric_limits<double>::infinity();
    for (const MetricStability &m : metrics) {
        if (!m.informative())
            continue;
        worst = std::min(worst, m.snr());
    }
    return worst;
}

StabilityReport
analyzeStability(const std::vector<suites::BenchmarkInfo> &benchmarks,
                 const uarch::MachineConfig &machine, std::size_t trials,
                 std::uint64_t instructions, std::uint64_t warmup,
                 std::size_t jobs, CampaignStore *store)
{
    if (benchmarks.size() < 2)
        throw std::invalid_argument("analyzeStability: >= 2 benchmarks");
    if (trials < 2)
        throw std::invalid_argument("analyzeStability: >= 2 trials");

    std::vector<Metric> canonical = metricsFor(MetricSelection::Canonical);

    // values[metric][benchmark][trial], preallocated so the parallel
    // resampling below writes disjoint slots keyed by (benchmark,
    // trial) identity — the result is independent of scheduling.
    std::vector<std::vector<std::vector<double>>> values(
        canonical.size(),
        std::vector<std::vector<double>>(
            benchmarks.size(), std::vector<double>(trials)));

    parallelFor(
        benchmarks.size() * trials, jobs, [&](std::size_t i) {
            std::size_t b = i / trials;
            std::size_t t = i % trials;
            uarch::SimulationConfig config;
            config.instructions = instructions;
            config.warmup = warmup;
            config.seed_salt = t;
            MetricVector mv = extractMetrics(storedSimulate(
                store, benchmarks[b].profile, machine, config));
            for (std::size_t m = 0; m < canonical.size(); ++m)
                values[m][b][t] = mv.get(canonical[m]);
        });

    StabilityReport report;
    report.trials = trials;
    for (std::size_t m = 0; m < canonical.size(); ++m) {
        MetricStability entry;
        entry.metric = canonical[m];

        std::vector<double> means;
        std::vector<double> noises;
        double magnitude = 0.0;
        for (std::size_t b = 0; b < benchmarks.size(); ++b) {
            means.push_back(stats::mean(values[m][b]));
            noises.push_back(stats::stddev(values[m][b]));
            magnitude += std::fabs(means.back());
        }
        entry.noise = stats::mean(noises);
        entry.signal = stats::stddev(means);
        entry.scale = magnitude / static_cast<double>(benchmarks.size());
        report.metrics.push_back(entry);
    }
    return report;
}

} // namespace core
} // namespace speclens
