/**
 * @file
 * Metric extraction and selection.
 */

#include "metrics.h"

#include <stdexcept>

namespace speclens {
namespace core {

std::string
metricName(Metric metric)
{
    switch (metric) {
      case Metric::L1dMpki: return "l1d_mpki";
      case Metric::L1iMpki: return "l1i_mpki";
      case Metric::L2dMpki: return "l2d_mpki";
      case Metric::L2iMpki: return "l2i_mpki";
      case Metric::L3Mpki: return "l3_mpki";
      case Metric::DtlbMpmi: return "dtlb_mpmi";
      case Metric::ItlbMpmi: return "itlb_mpmi";
      case Metric::L2tlbMpmi: return "l2tlb_mpmi";
      case Metric::PageWalkMpmi: return "pagewalk_mpmi";
      case Metric::BranchMpki: return "branch_mpki";
      case Metric::BranchTakenMpki: return "taken_mpki";
      case Metric::PctLoad: return "pct_load";
      case Metric::PctStore: return "pct_store";
      case Metric::PctBranch: return "pct_branch";
      case Metric::PctFp: return "pct_fp";
      case Metric::PctSimd: return "pct_simd";
      case Metric::PctKernel: return "pct_kernel";
      case Metric::CorePower: return "core_power";
      case Metric::LlcPower: return "llc_power";
      case Metric::DramPower: return "dram_power";
      case Metric::L1dApki: return "l1d_apki";
      case Metric::L1iApki: return "l1i_apki";
      case Metric::PrefetchCoverage: return "prefetch_coverage";
      case Metric::PrefetchAccuracy: return "prefetch_accuracy";
      case Metric::PrefetchTimeliness: return "prefetch_timeliness";
      case Metric::WayPredAccuracy: return "way_pred_accuracy";
      case Metric::RowBufferHitRate: return "row_buffer_hit_rate";
      case Metric::DramBwUtil: return "dram_bw_utilization";
      case Metric::Count: break;
    }
    throw std::invalid_argument("metricName: bad metric");
}

MetricVector
extractMetrics(const uarch::SimulationResult &result)
{
    const uarch::PerfCounters &c = result.counters;
    MetricVector m;
    m.set(Metric::L1dMpki, c.l1dMpki());
    m.set(Metric::L1iMpki, c.l1iMpki());
    m.set(Metric::L2dMpki, c.l2dMpki());
    m.set(Metric::L2iMpki, c.l2iMpki());
    m.set(Metric::L3Mpki, c.l3Mpki());
    m.set(Metric::DtlbMpmi, c.dtlbMpmi());
    m.set(Metric::ItlbMpmi, c.itlbMpmi());
    m.set(Metric::L2tlbMpmi, c.l2tlbMpmi());
    m.set(Metric::PageWalkMpmi, c.pageWalksPerMi());
    m.set(Metric::BranchMpki, c.branchMpki());
    m.set(Metric::BranchTakenMpki, c.takenMpki());
    m.set(Metric::PctLoad, 100.0 * c.loadFraction());
    m.set(Metric::PctStore, 100.0 * c.storeFraction());
    m.set(Metric::PctBranch, 100.0 * c.branchFraction());
    m.set(Metric::PctFp, 100.0 * c.fpFraction());
    m.set(Metric::PctSimd, 100.0 * c.simdFraction());
    m.set(Metric::PctKernel, 100.0 * c.kernelFraction());
    m.set(Metric::CorePower, result.power.core_watts);
    m.set(Metric::LlcPower, result.power.llc_watts);
    m.set(Metric::DramPower, result.power.dram_watts);
    m.set(Metric::L1dApki, c.perKilo(c.l1d_accesses));
    m.set(Metric::L1iApki, c.perKilo(c.l1i_accesses));
    m.set(Metric::PrefetchCoverage, c.prefetchCoverage());
    m.set(Metric::PrefetchAccuracy, c.prefetchAccuracy());
    m.set(Metric::PrefetchTimeliness,
          c.prefetch_fills == 0 ? 0.0 : c.prefetchTimeliness());
    m.set(Metric::WayPredAccuracy, c.wayPredAccuracy());
    m.set(Metric::RowBufferHitRate, c.rowBufferHitRate());
    m.set(Metric::DramBwUtil, c.dramBwUtilization());
    return m;
}

std::vector<Metric>
metricsFor(MetricSelection selection)
{
    switch (selection) {
      case MetricSelection::Canonical:
        return {Metric::L1dMpki,       Metric::L1iMpki,
                Metric::L2dMpki,       Metric::L2iMpki,
                Metric::L3Mpki,        Metric::DtlbMpmi,
                Metric::ItlbMpmi,      Metric::L2tlbMpmi,
                Metric::PageWalkMpmi,  Metric::BranchMpki,
                Metric::BranchTakenMpki, Metric::PctLoad,
                Metric::PctStore,      Metric::PctBranch,
                Metric::PctFp,         Metric::PctSimd,
                Metric::PctKernel,     Metric::CorePower,
                Metric::LlcPower,      Metric::DramPower};
      case MetricSelection::Branch:
        return {Metric::BranchMpki, Metric::BranchTakenMpki,
                Metric::PctBranch};
      case MetricSelection::DataCache:
        return {Metric::L1dMpki, Metric::L2dMpki, Metric::L3Mpki,
                Metric::L1dApki};
      case MetricSelection::InstrCache:
        return {Metric::L1iMpki, Metric::L2iMpki, Metric::L1iApki};
      case MetricSelection::CacheAll:
        return {Metric::L1dMpki, Metric::L1iMpki, Metric::L2dMpki,
                Metric::L2iMpki, Metric::L3Mpki, Metric::L1dApki,
                Metric::L1iApki};
      case MetricSelection::Tlb:
        return {Metric::DtlbMpmi, Metric::ItlbMpmi, Metric::L2tlbMpmi,
                Metric::PageWalkMpmi};
      case MetricSelection::Power:
        return {Metric::CorePower, Metric::LlcPower, Metric::DramPower};
      case MetricSelection::MemoryCentric:
        return {Metric::PrefetchCoverage,  Metric::PrefetchAccuracy,
                Metric::PrefetchTimeliness, Metric::WayPredAccuracy,
                Metric::RowBufferHitRate,  Metric::DramBwUtil,
                Metric::L2dMpki,           Metric::L3Mpki};
    }
    throw std::invalid_argument("metricsFor: bad selection");
}

std::string
metricSelectionName(MetricSelection selection)
{
    switch (selection) {
      case MetricSelection::Canonical: return "canonical";
      case MetricSelection::Branch: return "branch";
      case MetricSelection::DataCache: return "data-cache";
      case MetricSelection::InstrCache: return "instr-cache";
      case MetricSelection::CacheAll: return "cache-all";
      case MetricSelection::Tlb: return "tlb";
      case MetricSelection::Power: return "power";
      case MetricSelection::MemoryCentric: return "memory-centric";
    }
    throw std::invalid_argument("metricSelectionName: bad selection");
}

} // namespace core
} // namespace speclens
