/**
 * @file
 * Per-request analysis session: a cheap borrow of a ServiceContext.
 *
 * Every entry point that runs a measurement campaign — the 27 bench
 * binaries, the `speclens` CLI commands, the serve daemon's request
 * handlers and the end-to-end tests — needs the same wiring: a
 * CharacterizationConfig built from the parsed window options, a
 * Characterizer over a machine set, and (when the user passed
 * `--store DIR`) the persistent artifact store attached.
 *
 * The process-lifetime half of that wiring (immutable model registry,
 * shared sharded store, worker pool, pooled Characterizers) lives in
 * ServiceContext (service_context.h).  An AnalysisSession is the
 * per-request half: it borrows a context (shared_ptr) and names the
 * machine set this request measures on.  Constructing one costs a
 * refcount bump and a map lookup — cheap enough for a daemon to build
 * per query.
 *
 * Batch compatibility: the SessionConfig constructor builds a session
 * that owns a private context, which preserves the original one-shot
 * behaviour end to end — when the last session sharing a store-backed
 * context dies, the context prints the one-line reuse summary to
 * *stderr* (never stdout — warm and cold runs must stay byte-identical
 * on stdout; the summary includes `simulations=N` and CI asserts
 * `simulations=0` on a warm run) and leaves a run manifest
 * (`run-manifest.json`, obs/manifest.h, atomic temp+rename write) in
 * the store directory.
 */

#ifndef SPECLENS_CORE_ANALYSIS_SESSION_H
#define SPECLENS_CORE_ANALYSIS_SESSION_H

#include <memory>
#include <string>
#include <vector>

#include "core/artifact_store.h"
#include "core/characterization.h"
#include "core/service_context.h"
#include "uarch/machine.h"

namespace speclens {
namespace core {

/** Everything a batch (context-owning) AnalysisSession is built from. */
struct SessionConfig
{
    /** Machines to measure on (order defines feature layout). */
    std::vector<uarch::MachineConfig> machines;

    /** Simulation window parameters (including seed_salt and jobs). */
    CharacterizationConfig characterization;

    /**
     * Artifact-store directory; empty disables persistence and the
     * session degenerates to a plain in-process Characterizer.
     */
    std::string store_dir;
};

/** One analysis run's (or one request's) campaign machinery. */
class AnalysisSession
{
  public:
    /**
     * Batch constructor: build and own a private ServiceContext.
     * Behaviour matches the pre-split one-shot session exactly
     * (summary + manifest on destruction when a store is attached).
     */
    explicit AnalysisSession(SessionConfig config);

    /**
     * Per-request constructor: borrow @p context and measure on
     * @p machines through its pooled Characterizer.  The context
     * outlives the session (shared ownership); summary/manifest are
     * emitted when the *context* dies, not per request.
     */
    AnalysisSession(std::shared_ptr<ServiceContext> context,
                    const std::vector<uarch::MachineConfig> &machines);

    /** Per-request constructor over the context's profiling machines. */
    explicit AnalysisSession(std::shared_ptr<ServiceContext> context);

    // Movable (so factories can return sessions by value); a
    // moved-from session owns nothing and prints nothing.
    AnalysisSession(AnalysisSession &&) = default;
    AnalysisSession &operator=(AnalysisSession &&) = default;

    ~AnalysisSession() = default;

    Characterizer &characterizer() { return *characterizer_; }

    /** The borrowed (or owned) process-lifetime context. */
    ServiceContext &context() { return *context_; }
    const ServiceContext &context() const { return *context_; }

    /** Shared ownership of the context (to hand to a daemon/session). */
    const std::shared_ptr<ServiceContext> &contextPtr() const
    {
        return context_;
    }

    /** The attached store; null when persistence is disabled. */
    CampaignStore *store() const { return context_->store(); }

    /** True when results persist across processes. */
    bool persistent() const { return context_->persistent(); }

    /** The context's one-line reuse summary (see ServiceContext). */
    std::string summary() const { return context_->summary(); }

    /**
     * 16-hex fingerprint over everything that determines this
     * session's results: engine version, simulation window and the
     * full machine set.  Recorded in the run manifest so warm and
     * cold runs of the same configuration are diffable.
     */
    const std::string &configFingerprint() const
    {
        return context_->configFingerprint();
    }

  private:
    std::shared_ptr<ServiceContext> context_;
    Characterizer *characterizer_ = nullptr;
};

} // namespace core
} // namespace speclens

#endif // SPECLENS_CORE_ANALYSIS_SESSION_H
