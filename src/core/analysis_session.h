/**
 * @file
 * Shared analysis-session wiring: Characterizer + machines + store.
 *
 * Every entry point that runs a measurement campaign — the 27 bench
 * binaries, the `speclens` CLI commands and the end-to-end tests —
 * needs the same setup: build a CharacterizationConfig from the parsed
 * window options, construct a Characterizer over a machine set, and
 * (when the user passed `--store DIR`) open the persistent artifact
 * store and attach it.  AnalysisSession is that setup, written once.
 *
 * When a store is attached, the session prints a one-line reuse
 * summary to *stderr* on destruction (never stdout — warm and cold
 * runs must stay byte-identical on stdout).  The summary includes
 * `simulations=N`; CI asserts `simulations=0` on a warm run.
 *
 * A store-backed session also leaves a run manifest
 * (`run-manifest.json`, obs/manifest.h) in the store directory on
 * destruction: engine version, configuration fingerprint, store
 * totals, the rejected-entry breakdown and a full metric snapshot.
 */

#ifndef SPECLENS_CORE_ANALYSIS_SESSION_H
#define SPECLENS_CORE_ANALYSIS_SESSION_H

#include <memory>
#include <string>
#include <vector>

#include "core/artifact_store.h"
#include "core/characterization.h"
#include "uarch/machine.h"

namespace speclens {
namespace core {

/** Everything an AnalysisSession is built from. */
struct SessionConfig
{
    /** Machines to measure on (order defines feature layout). */
    std::vector<uarch::MachineConfig> machines;

    /** Simulation window parameters (including seed_salt and jobs). */
    CharacterizationConfig characterization;

    /**
     * Artifact-store directory; empty disables persistence and the
     * session degenerates to a plain in-process Characterizer.
     */
    std::string store_dir;
};

/** One analysis run's shared campaign machinery. */
class AnalysisSession
{
  public:
    explicit AnalysisSession(SessionConfig config);

    // Movable (so factories can return sessions by value); a
    // moved-from session owns nothing and prints nothing.
    AnalysisSession(AnalysisSession &&) = default;
    AnalysisSession &operator=(AnalysisSession &&) = default;

    /**
     * Prints the reuse summary to stderr and writes the run manifest
     * into the store directory when a store is attached.
     */
    ~AnalysisSession();

    Characterizer &characterizer() { return *characterizer_; }

    /** The attached store; null when persistence is disabled. */
    CampaignStore *store() const { return store_.get(); }

    /** True when results persist across processes. */
    bool persistent() const { return store_ != nullptr; }

    /**
     * One-line machine-parseable reuse summary, e.g.
     * `[speclens-store] dir=... entries=301 hits=301 simulations=0
     * saves=0 rejected=0`.  `rejected` counts defensively discarded
     * entries (corrupt + stale + fingerprint-mismatched) plus orphaned
     * temp files swept when the store was opened.
     */
    std::string summary() const;

    /**
     * 16-hex fingerprint over everything that determines this
     * session's results: engine version, simulation window and the
     * full machine set.  Recorded in the run manifest so warm and
     * cold runs of the same configuration are diffable.
     */
    const std::string &configFingerprint() const
    {
        return config_fingerprint_;
    }

  private:
    std::shared_ptr<CampaignStore> store_;
    std::unique_ptr<Characterizer> characterizer_;
    std::string config_fingerprint_;
};

} // namespace core
} // namespace speclens

#endif // SPECLENS_CORE_ANALYSIS_SESSION_H
