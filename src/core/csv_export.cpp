/**
 * @file
 * CSV export implementation.
 */

#include "csv_export.h"

#include <stdexcept>

namespace speclens {
namespace core {

std::string
csvQuote(const std::string &field)
{
    bool needs_quotes = field.find_first_of(",\"\n\r") !=
                        std::string::npos;
    if (!needs_quotes)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

void
writeCsv(std::ostream &out, const std::vector<std::string> &labels,
         const std::vector<std::string> &feature_names,
         const stats::Matrix &features)
{
    if (labels.size() != features.rows())
        throw std::invalid_argument("writeCsv: label count");
    if (feature_names.size() != features.cols())
        throw std::invalid_argument("writeCsv: feature-name count");

    out << "benchmark";
    for (const std::string &name : feature_names)
        out << "," << csvQuote(name);
    out << "\n";

    for (std::size_t r = 0; r < features.rows(); ++r) {
        out << csvQuote(labels[r]);
        for (std::size_t c = 0; c < features.cols(); ++c)
            out << "," << features(r, c);
        out << "\n";
    }
}

void
writeSimilarityCsv(std::ostream &out, const SimilarityResult &analysis)
{
    out << "benchmark";
    for (std::size_t pc = 0; pc < analysis.pca.retained; ++pc)
        out << ",pc" << (pc + 1);
    out << ",join_height\n";

    for (std::size_t r = 0; r < analysis.labels.size(); ++r) {
        out << csvQuote(analysis.labels[r]);
        for (std::size_t pc = 0; pc < analysis.scores.cols(); ++pc)
            out << "," << analysis.scores(r, pc);
        out << "," << analysis.dendrogram.leafJoinHeight(r) << "\n";
    }
}

} // namespace core
} // namespace speclens
