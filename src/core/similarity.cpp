/**
 * @file
 * Similarity pipeline implementation.
 */

#include "similarity.h"

#include <limits>
#include <stdexcept>

#include "stats/distance.h"

namespace speclens {
namespace core {

double
SimilarityResult::pcDistance(std::size_t a, std::size_t b) const
{
    return stats::distance(scores.row(a), scores.row(b), config.metric);
}

std::size_t
SimilarityResult::indexOf(const std::string &label) const
{
    for (std::size_t i = 0; i < labels.size(); ++i)
        if (labels[i] == label)
            return i;
    throw std::out_of_range("SimilarityResult::indexOf: " + label);
}

std::size_t
SimilarityResult::mostDistinct() const
{
    std::size_t best = 0;
    double best_min = -1.0;
    for (std::size_t i = 0; i < labels.size(); ++i) {
        double nearest = std::numeric_limits<double>::infinity();
        for (std::size_t j = 0; j < labels.size(); ++j) {
            if (i == j)
                continue;
            nearest = std::min(nearest, pcDistance(i, j));
        }
        if (nearest > best_min) {
            best_min = nearest;
            best = i;
        }
    }
    return best;
}

std::string
SimilarityResult::renderDendrogram() const
{
    return dendrogram.render(labels);
}

SimilarityResult
analyzeSimilarity(const stats::Matrix &features,
                  std::vector<std::string> labels,
                  const SimilarityConfig &config)
{
    if (features.rows() != labels.size())
        throw std::invalid_argument("analyzeSimilarity: label count");
    if (features.rows() < 2)
        throw std::invalid_argument("analyzeSimilarity: need >= 2 rows");

    SimilarityResult out;
    out.labels = std::move(labels);
    out.config = config;
    out.pca = stats::fitPca(features, config.retention);
    out.scores = out.pca.scores;
    out.dendrogram =
        stats::clusterPoints(out.scores, config.linkage, config.metric);
    return out;
}

} // namespace core
} // namespace speclens
