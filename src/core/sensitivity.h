/**
 * @file
 * Configuration-sensitivity classification (Section V-G, Table IX).
 *
 * The paper ranks every CPU2017 benchmark on each machine by a metric
 * of interest (branch MPKI, L1D MPKI, D-TLB MPMI) and uses the
 * variation of a benchmark's rank across machines as its sensitivity
 * to that structure: a benchmark whose rank swings widely is strongly
 * affected by predictor/cache/TLB sizing, while one whose rank is
 * stable behaves the same everywhere — note that stable can mean
 * "uniformly bad", as for leela's branches.
 */

#ifndef SPECLENS_CORE_SENSITIVITY_H
#define SPECLENS_CORE_SENSITIVITY_H

#include <string>
#include <vector>

#include "core/characterization.h"

namespace speclens {
namespace core {

/** Sensitivity class of Table IX. */
enum class SensitivityClass { Low, Medium, High };

/** Human-readable class name. */
std::string sensitivityClassName(SensitivityClass cls);

/** One benchmark's sensitivity verdict. */
struct SensitivityEntry
{
    std::string benchmark;
    double rank_spread = 0.0;  //!< Max - min rank across machines.
    double mean_value = 0.0;   //!< Mean metric value across machines.
    SensitivityClass cls = SensitivityClass::Low;
};

/** Full classification for one metric. */
struct SensitivityReport
{
    Metric metric = Metric::BranchMpki;
    std::vector<SensitivityEntry> entries; //!< Descending rank spread.

    /** Entries of a class, in descending rank-spread order. */
    std::vector<std::string> names(SensitivityClass cls) const;
};

/**
 * Classify @p benchmarks by their sensitivity of @p metric across the
 * characterizer's machines.  The top @p high_fraction of rank spreads
 * is High, the next @p medium_fraction Medium, the rest Low (the
 * paper's three-way split).
 */
SensitivityReport
classifySensitivity(Characterizer &characterizer,
                    const std::vector<suites::BenchmarkInfo> &benchmarks,
                    Metric metric, double high_fraction = 0.1,
                    double medium_fraction = 0.3);

} // namespace core
} // namespace speclens

#endif // SPECLENS_CORE_SENSITIVITY_H
