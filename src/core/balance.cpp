/**
 * @file
 * Suite-balance analyses implementation.
 */

#include "balance.h"

#include <algorithm>
#include <limits>

#include "stats/descriptive.h"

namespace speclens {
namespace core {

namespace {

/** Project selected rows of the score matrix onto a PC plane. */
std::vector<stats::Point2>
planePoints(const stats::Matrix &scores,
            const std::vector<std::size_t> &rows, std::size_t pc_x,
            std::size_t pc_y)
{
    std::vector<stats::Point2> out;
    out.reserve(rows.size());
    for (std::size_t r : rows) {
        stats::Point2 p;
        p.x = scores(r, pc_x);
        p.y = pc_y < scores.cols() ? scores(r, pc_y) : 0.0;
        out.push_back(p);
    }
    return out;
}

PlaneCoverage
planeCoverage(const stats::Matrix &scores,
              const std::vector<std::size_t> &rows_a,
              const std::vector<std::size_t> &rows_b, std::size_t pc_x,
              std::size_t pc_y)
{
    PlaneCoverage out;
    out.pc_x = pc_x;
    out.pc_y = pc_y;

    auto points_a = planePoints(scores, rows_a, pc_x, pc_y);
    auto points_b = planePoints(scores, rows_b, pc_x, pc_y);
    out.area_a = stats::hullArea(points_a);
    out.area_b = stats::hullArea(points_b);
    out.area_ratio = out.area_b > 0.0 ? out.area_a / out.area_b : 0.0;

    auto hull_b = stats::convexHull(points_b);
    std::size_t outside = 0;
    for (const stats::Point2 &p : points_a)
        if (!stats::pointInConvexPolygon(p, hull_b))
            ++outside;
    out.a_outside_b = points_a.empty()
                          ? 0.0
                          : static_cast<double>(outside) /
                                static_cast<double>(points_a.size());
    return out;
}

} // namespace

SuiteComparison
compareSuites(Characterizer &characterizer,
              const std::vector<suites::BenchmarkInfo> &suite_a,
              const std::vector<suites::BenchmarkInfo> &suite_b,
              MetricSelection selection,
              const std::vector<std::size_t> &machine_indices,
              const SimilarityConfig &config)
{
    std::vector<suites::BenchmarkInfo> joint = suite_a;
    for (const suites::BenchmarkInfo &b : suite_b)
        joint.push_back(b);

    std::vector<std::size_t> machines = machine_indices;
    if (machines.empty()) {
        machines.resize(characterizer.machines().size());
        for (std::size_t i = 0; i < machines.size(); ++i)
            machines[i] = i;
    }

    SuiteComparison out;
    out.similarity = analyzeSimilarity(
        characterizer.featureMatrix(joint, selection, machines),
        suites::benchmarkNames(joint), config);

    for (std::size_t i = 0; i < suite_a.size(); ++i)
        out.rows_a.push_back(i);
    for (std::size_t i = 0; i < suite_b.size(); ++i)
        out.rows_b.push_back(suite_a.size() + i);

    const stats::Matrix &scores = out.similarity.scores;
    out.pc12 = planeCoverage(scores, out.rows_a, out.rows_b, 0, 1);
    std::size_t pc3 = std::min<std::size_t>(2, scores.cols() - 1);
    std::size_t pc4 = std::min<std::size_t>(3, scores.cols() - 1);
    out.pc34 = planeCoverage(scores, out.rows_a, out.rows_b, pc3, pc4);
    return out;
}

std::vector<CoverageVerdict>
coverageAnalysis(Characterizer &characterizer,
                 const std::vector<suites::BenchmarkInfo> &reference,
                 const std::vector<suites::BenchmarkInfo> &candidates,
                 double threshold_factor, const SimilarityConfig &config)
{
    std::vector<suites::BenchmarkInfo> joint = reference;
    for (const suites::BenchmarkInfo &b : candidates)
        joint.push_back(b);

    SimilarityResult sim = analyzeSimilarity(
        characterizer.featureMatrix(joint),
        suites::benchmarkNames(joint), config);

    std::size_t n_ref = reference.size();

    // Scale: median nearest-neighbour distance within the reference
    // suite.
    std::vector<double> ref_nn;
    for (std::size_t i = 0; i < n_ref; ++i) {
        double nearest = std::numeric_limits<double>::infinity();
        for (std::size_t j = 0; j < n_ref; ++j) {
            if (i == j)
                continue;
            nearest = std::min(nearest, sim.pcDistance(i, j));
        }
        ref_nn.push_back(nearest);
    }
    double threshold = threshold_factor * stats::median(ref_nn);

    std::vector<CoverageVerdict> out;
    for (std::size_t c = 0; c < candidates.size(); ++c) {
        std::size_t row = n_ref + c;
        CoverageVerdict v;
        v.benchmark = candidates[c].name;
        double nearest = std::numeric_limits<double>::infinity();
        for (std::size_t j = 0; j < n_ref; ++j) {
            double d = sim.pcDistance(row, j);
            if (d < nearest) {
                nearest = d;
                v.nearest = reference[j].name;
            }
        }
        v.nn_distance = nearest;
        v.covered = nearest <= threshold;
        out.push_back(std::move(v));
    }
    return out;
}

} // namespace core
} // namespace speclens
