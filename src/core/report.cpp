/**
 * @file
 * Text-rendering helpers.
 */

#include "report.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace speclens {
namespace core {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    if (headers_.empty())
        throw std::invalid_argument("TextTable: no headers");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        throw std::invalid_argument("TextTable::addRow: column count");
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream os;
    os.precision(precision);
    os << std::fixed << value;
    return os.str();
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto render_row = [&widths](const std::vector<std::string> &cells) {
        std::ostringstream os;
        os << "|";
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << " " << cells[c]
               << std::string(widths[c] - cells[c].size(), ' ') << " |";
        }
        os << "\n";
        return os.str();
    };

    std::ostringstream os;
    os << render_row(headers_);
    os << "|";
    for (std::size_t c = 0; c < widths.size(); ++c)
        os << std::string(widths[c] + 2, '-') << "|";
    os << "\n";
    for (const auto &row : rows_)
        os << render_row(row);
    return os.str();
}

std::string
renderScatter(const std::vector<ScatterPoint> &points,
              const std::string &x_label, const std::string &y_label,
              int width, int height)
{
    if (points.empty())
        return "(no points)\n";

    double min_x = points[0].x, max_x = points[0].x;
    double min_y = points[0].y, max_y = points[0].y;
    for (const ScatterPoint &p : points) {
        min_x = std::min(min_x, p.x);
        max_x = std::max(max_x, p.x);
        min_y = std::min(min_y, p.y);
        max_y = std::max(max_y, p.y);
    }
    double span_x = max_x - min_x;
    double span_y = max_y - min_y;
    if (span_x <= 0.0)
        span_x = 1.0;
    if (span_y <= 0.0)
        span_y = 1.0;

    std::vector<std::string> grid(
        static_cast<std::size_t>(height),
        std::string(static_cast<std::size_t>(width), ' '));
    for (const ScatterPoint &p : points) {
        int col = static_cast<int>(std::lround(
            (p.x - min_x) / span_x * (width - 1)));
        int row = static_cast<int>(std::lround(
            (p.y - min_y) / span_y * (height - 1)));
        // Flip vertically: larger y at the top.
        grid[static_cast<std::size_t>(height - 1 - row)]
            [static_cast<std::size_t>(col)] = p.glyph;
    }

    std::ostringstream os;
    os << "  " << y_label << " ^\n";
    for (const std::string &line : grid)
        os << "  |" << line << "|\n";
    os << "  +" << std::string(static_cast<std::size_t>(width), '-')
       << "> " << x_label << "\n";
    os << "  x: [" << TextTable::num(min_x) << ", "
       << TextTable::num(max_x) << "]  y: [" << TextTable::num(min_y)
       << ", " << TextTable::num(max_y) << "]\n";
    return os.str();
}

std::string
renderStackedBars(const std::vector<std::string> &row_labels,
                  const std::vector<std::vector<double>> &segments,
                  const std::vector<std::string> &segment_names,
                  int width)
{
    if (row_labels.size() != segments.size())
        throw std::invalid_argument("renderStackedBars: row count");

    static const std::string glyphs = "#=+:*%@~o";

    double max_total = 0.0;
    for (const auto &row : segments) {
        double total = 0.0;
        for (double v : row)
            total += v;
        max_total = std::max(max_total, total);
    }
    if (max_total <= 0.0)
        max_total = 1.0;

    std::size_t label_width = 0;
    for (const std::string &label : row_labels)
        label_width = std::max(label_width, label.size());

    std::ostringstream os;
    for (std::size_t r = 0; r < segments.size(); ++r) {
        os << row_labels[r]
           << std::string(label_width - row_labels[r].size(), ' ')
           << " |";
        double total = 0.0;
        for (std::size_t s = 0; s < segments[r].size(); ++s) {
            int chars = static_cast<int>(std::lround(
                segments[r][s] / max_total * width));
            os << std::string(static_cast<std::size_t>(chars),
                              glyphs[s % glyphs.size()]);
            total += segments[r][s];
        }
        os << "  (" << TextTable::num(total) << ")\n";
    }
    os << "legend:";
    for (std::size_t s = 0; s < segment_names.size(); ++s)
        os << " " << glyphs[s % glyphs.size()] << "=" << segment_names[s];
    os << "\n";
    return os.str();
}

} // namespace core
} // namespace speclens
