/**
 * @file
 * Pinned performance trajectory for the per-PR BENCH_<pr>.json artifact.
 *
 * Every PR that touches the simulation or stats hot paths re-runs one
 * fixed, single-threaded campaign (all of CPU2017 on the seven
 * profiling machines, 150k measured + 40k warm-up instructions, seed
 * salt 0) and records what it measured: wall-clock per stage,
 * simulations/sec and records/sec for the fused streaming pipeline,
 * the slowdown of the materialized-window baseline, and the stats
 * stage (feature matrix, PCA, pairwise distances).  Committing the
 * emitted BENCH_<pr>.json per PR gives the repo a perf trajectory that
 * is diffable across PRs without re-running old binaries.
 *
 * Split contract so reruns are comparable:
 *  - renderTrajectoryFacts() — deterministic facts only (configuration,
 *    counts, result fingerprints, parity verdicts).  This is what the
 *    CLI prints to stdout, so a warm-store rerun's stdout is
 *    byte-identical to the cold run's.
 *  - renderTrajectoryJson() — facts plus timings.  Timings vary run to
 *    run, so they live only in the JSON artifact (and stderr), never
 *    on stdout.
 *
 * The run itself re-proves the two bit-identical contracts on every
 * invocation: fused-vs-materialized parity for every (benchmark,
 * machine) pair, and warm-store results equal to the cold campaign's
 * when a store directory is given.
 */

#ifndef SPECLENS_CORE_PERF_TRAJECTORY_H
#define SPECLENS_CORE_PERF_TRAJECTORY_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace speclens {
namespace core {

/** Pinned measured-window size (instructions per simulation). */
constexpr std::uint64_t kTrajectoryInstructions = 150'000;

/** Pinned warm-up window size. */
constexpr std::uint64_t kTrajectoryWarmup = 40'000;

/**
 * Seed-tree baseline for the pinned campaign, measured once on the
 * reference container (single thread, best of 3) by replaying the
 * seed commit's Characterizer over the same 43 x 7 / 150k+40k / salt 0
 * configuration.  Recorded as constants so every BENCH_<pr>.json can
 * report a cumulative `speedup_vs_seed` alongside the in-binary
 * `speedup_vs_materialized`, whose shared-win baseline understates
 * the trajectory (DESIGN.md §5e).
 */
constexpr double kSeedRecordsPerSecond = 8.221188e6;
constexpr double kSeedSimulationsPerSecond = 43.269411;

/** Trajectory run parameters.  Defaults are the pinned configuration. */
struct TrajectoryConfig
{
    /** PR number stamped into the artifact (BENCH_<pr>.json). */
    int pr = 0;

    /**
     * Window sizes.  The pinned values make artifacts comparable
     * across PRs; tests shrink them to keep runtimes down.
     */
    std::uint64_t instructions = kTrajectoryInstructions;
    std::uint64_t warmup = kTrajectoryWarmup;

    /** Seed salt (pinned to 0 for the committed artifact). */
    std::uint64_t seed_salt = 0;

    /**
     * Artifact-store directory for the cold/warm reuse proof; empty
     * skips that stage.
     */
    std::string store_dir;
};

/** Everything one trajectory run measured and proved. */
struct TrajectoryResult
{
    TrajectoryConfig config;

    // -- Campaign shape (deterministic). --
    std::size_t benchmarks = 0; //!< CPU2017 workloads measured.
    std::size_t machines = 0;   //!< Profiling machines measured on.
    std::size_t simulations = 0; //!< (benchmark, machine) pairs run.
    std::uint64_t records_per_simulation = 0; //!< warmup + instructions.
    std::uint64_t records_total = 0;

    /**
     * FNV-1a fingerprint over every simulation result in (benchmark,
     * machine) order — every counter and every derived double by bit
     * pattern.  Identical across reruns, thread counts and the
     * fused/materialized split; the headline determinism fact.
     */
    std::uint64_t campaign_fingerprint = 0;

    // -- Fused streaming campaign (timed). --
    double fused_seconds = 0.0;
    double simulations_per_second = 0.0;
    double records_per_second = 0.0;

    // -- Materialized-window baseline (timed). --
    double materialized_seconds = 0.0;
    /** materialized / fused wall-clock ratio. */
    double speedup_vs_materialized = 0.0;
    /** records_per_second / kSeedRecordsPerSecond (cumulative). */
    double speedup_vs_seed = 0.0;
    /** Every pair bit-identical between the two pipelines. */
    bool parity_bit_identical = false;

    // -- Stats stage (timed). --
    double stats_seconds = 0.0;
    std::size_t feature_rows = 0;
    std::size_t feature_cols = 0;
    std::size_t pca_retained = 0;
    double pca_variance_covered = 0.0;
    /** Fingerprint over feature matrix, eigenvalues and distances. */
    std::uint64_t stats_fingerprint = 0;

    // -- Artifact-store reuse proof (only when store_dir set). --
    bool store_checked = false;
    double store_cold_seconds = 0.0;
    double store_warm_seconds = 0.0;
    /** Simulations the warm rerun had to run; must be 0. */
    std::size_t warm_simulations_run = 0;
    /** Fraction of pairs the warm rerun served without simulating. */
    double warm_hit_rate = 0.0;
    /** Warm results bit-identical to the cold campaign's. */
    bool warm_bit_identical = false;
};

/**
 * Run the pinned campaign (CPU2017 x profiling machines, single
 * thread) through both pipelines plus the stats stage, verifying the
 * bit-identical contracts along the way.
 */
TrajectoryResult runTrajectory(const TrajectoryConfig &config);

/**
 * Deterministic facts block for stdout — no timings, no rates, nothing
 * that can differ between a cold and a warm rerun.
 */
std::string renderTrajectoryFacts(const TrajectoryResult &result);

/**
 * The BENCH_<pr>.json document: facts plus stage timings and derived
 * rates.  Well-formed JSON (obs::validateJson accepts it).
 */
std::string renderTrajectoryJson(const TrajectoryResult &result);

/** Canonical artifact file name, e.g. "BENCH_6.json" for pr 6. */
std::string trajectoryArtifactName(int pr);

} // namespace core
} // namespace speclens

#endif // SPECLENS_CORE_PERF_TRAJECTORY_H
