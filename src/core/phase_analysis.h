/**
 * @file
 * SimPoint-style phase analysis.
 *
 * The paper cuts simulation cost *across* benchmarks (subsetting);
 * SimPoints (Sherwood et al., ref [32]; Nair & John, ref [33]) cut it
 * *within* a benchmark by clustering execution phases and simulating
 * one representative per cluster.  This module implements that
 * complementary technique on SpecLens phased workloads: measure every
 * phase briefly, cluster phase metric vectors, pick the medoid of
 * each cluster, and estimate whole-run behaviour as the
 * cluster-weighted combination of the representatives.
 */

#ifndef SPECLENS_CORE_PHASE_ANALYSIS_H
#define SPECLENS_CORE_PHASE_ANALYSIS_H

#include <cstdint>
#include <vector>

#include "trace/phased_workload.h"
#include "uarch/machine.h"

namespace speclens {
namespace core {

class CampaignStore;

/** Phase-analysis parameters. */
struct SimPointConfig
{
    /** Phase clusters (representatives) to keep. */
    std::size_t clusters = 3;

    /** Measured instructions for the *full-run* reference. */
    std::uint64_t instructions = 120'000;

    /** Warm-up for the full-run reference. */
    std::uint64_t warmup = 30'000;

    /**
     * Measured instructions per phase probe (the short profiling pass
     * SimPoints affords because it only needs metric vectors, not
     * precise performance).
     */
    std::uint64_t probe_instructions = 30'000;

    /** Warm-up per phase probe. */
    std::uint64_t probe_warmup = 8'000;
};

/** Result of a SimPoint-style estimation. */
struct SimPointResult
{
    /** Phase indices chosen as representatives (medoid per cluster). */
    std::vector<std::size_t> representatives;

    /** Execution weight carried by each representative's cluster. */
    std::vector<double> weights;

    /** Whole-run CPI from the full phased simulation (ground truth). */
    double full_cpi = 0.0;

    /** CPI estimated from representatives only. */
    double estimated_cpi = 0.0;

    /** 100 * |estimated - full| / full. */
    double cpi_error_pct = 0.0;

    /** Same comparison for L1D MPKI. */
    double full_l1d_mpki = 0.0;
    double estimated_l1d_mpki = 0.0;
    double l1d_error_pct = 0.0;

    /**
     * Fraction of the whole run's instructions the representative
     * phases account for — simulating only those phases at full
     * fidelity costs roughly this share of a complete run.
     */
    double simulated_fraction = 0.0;
};

/**
 * Run the SimPoint-style estimation of @p workload on @p machine.
 *
 * @param store Optional artifact store backing both the phased
 *        ground-truth run and the per-phase probes; a warm store
 *        serves the whole estimation without simulating.
 * @throws std::invalid_argument when clusters exceeds the phase count.
 */
SimPointResult simpointEstimate(const trace::PhasedWorkload &workload,
                                const uarch::MachineConfig &machine,
                                const SimPointConfig &config = {},
                                CampaignStore *store = nullptr);

} // namespace core
} // namespace speclens

#endif // SPECLENS_CORE_PHASE_ANALYSIS_H
