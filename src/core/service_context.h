/**
 * @file
 * Process-lifetime analysis service state: immutable model registry,
 * shared artifact store, shared worker pool, Characterizer pool.
 *
 * The batch CLI rebuilt every workload and machine model, reopened the
 * store and re-derived the campaign fingerprint on each invocation.  A
 * long-running server answering many queries needs the opposite
 * ownership split:
 *
 *  - ServiceContext (this class) is built once per process.  It snap-
 *    shots the shipped benchmark suites and machine sets into an
 *    immutable registry, opens the (sharded) CampaignStore once, owns
 *    one bounded ThreadPool, and pools Characterizers keyed by machine
 *    set so every request against the same machines shares one memo
 *    cache and one in-flight dedup map.
 *
 *  - AnalysisSession (analysis_session.h) is per request: a cheap
 *    borrow of a context plus the machine set the request runs on.
 *    Constructing one allocates nothing but a shared_ptr copy.
 *
 * The context keeps the batch contract on destruction: when a store is
 * attached it prints the `[speclens-store] ...` reuse summary to
 * stderr and writes the run manifest (atomic temp+rename) into the
 * store directory.  The configuration fingerprint is computed exactly
 * as the pre-split AnalysisSession did — over the window and the
 * *primary* (first-pooled) machine set — so warm/cold manifests of a
 * batch run stay comparable across the refactor.
 *
 * Thread safety: the registry is immutable after construction;
 * characterizerFor() and workerPool() are guarded by one mutex (the
 * returned references stay valid for the context's lifetime); the
 * store and Characterizers are internally thread-safe.
 */

#ifndef SPECLENS_CORE_SERVICE_CONTEXT_H
#define SPECLENS_CORE_SERVICE_CONTEXT_H

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/artifact_store.h"
#include "core/characterization.h"
#include "core/parallel.h"
#include "suites/benchmark_info.h"
#include "uarch/machine.h"

namespace speclens {
namespace core {

/** Everything a ServiceContext is built from. */
struct ServiceConfig
{
    /** Simulation window parameters (including seed_salt and jobs). */
    CharacterizationConfig characterization;

    /**
     * Artifact-store directory; empty disables persistence (no store,
     * no summary, no manifest).
     */
    std::string store_dir;

    /** Total in-memory result-LRU capacity of the store. */
    std::size_t store_lru_capacity = kStoreDefaultLruCapacity;
};

/** Process-lifetime shared analysis state (see file comment). */
class ServiceContext
{
  public:
    explicit ServiceContext(ServiceConfig config);

    ServiceContext(const ServiceContext &) = delete;
    ServiceContext &operator=(const ServiceContext &) = delete;

    /**
     * Prints the reuse summary to stderr and writes the run manifest
     * into the store directory when a store is attached.
     */
    ~ServiceContext();

    const ServiceConfig &config() const { return config_; }

    // ----- Immutable model registry --------------------------------

    /** SPEC CPU2017 benchmarks (snapshot, feature order). */
    const std::vector<suites::BenchmarkInfo> &cpu2017() const
    {
        return cpu2017_;
    }

    /** SPEC CPU2006 benchmarks (snapshot). */
    const std::vector<suites::BenchmarkInfo> &cpu2006() const
    {
        return cpu2006_;
    }

    /** Emerging-workload benchmarks (snapshot). */
    const std::vector<suites::BenchmarkInfo> &emerging() const
    {
        return emerging_;
    }

    /**
     * Registry lookup by benchmark name across all snapshotted suites
     * (CPU2017 first, then CPU2006, then emerging); null when unknown.
     */
    const suites::BenchmarkInfo *findBenchmark(
        const std::string &name) const;

    /** The paper's seven profiling machines (snapshot). */
    const std::vector<uarch::MachineConfig> &profilingMachines() const
    {
        return profiling_machines_;
    }

    /** The sensitivity-analysis machine set (snapshot). */
    const std::vector<uarch::MachineConfig> &sensitivityMachines() const
    {
        return sensitivity_machines_;
    }

    /** The memory-centric machine variants (snapshot). */
    const std::vector<uarch::MachineConfig> &memoryMachines() const
    {
        return memory_machines_;
    }

    // ----- Shared campaign machinery -------------------------------

    /**
     * The pooled Characterizer for @p machines, created (with the
     * store attached and the shared worker pool wired) on first use
     * and keyed by the machine-set fingerprint, so concurrent requests
     * over the same machines share one memo cache and one in-flight
     * dedup map.  The reference stays valid for the context lifetime.
     */
    Characterizer &
    characterizerFor(const std::vector<uarch::MachineConfig> &machines);

    /** The attached store; null when persistence is disabled. */
    CampaignStore *store() const { return store_.get(); }

    /** True when results persist across processes. */
    bool persistent() const { return store_ != nullptr; }

    /**
     * The shared bounded worker pool (config jobs, 0 = one per
     * hardware thread), created on first use.
     */
    ThreadPool &workerPool();

    /**
     * Simulations executed across every pooled Characterizer — the
     * figure a warm-store acceptance check expects to be zero.
     */
    std::size_t simulationsRun() const;

    /**
     * One-line machine-parseable reuse summary, e.g.
     * `[speclens-store] dir=... entries=301 hits=301 simulations=0
     * saves=0 rejected=0`.  `rejected` counts defensively discarded
     * entries (corrupt + stale + fingerprint-mismatched) plus orphaned
     * temp files swept when the store was opened.
     */
    std::string summary() const;

    /**
     * 16-hex fingerprint over everything that determines this
     * context's results: engine version, simulation window and the
     * primary machine set (the first one pooled; the profiling set
     * until a Characterizer exists).  Recorded in the run manifest so
     * warm and cold runs of the same configuration are diffable.
     */
    const std::string &configFingerprint() const;

  private:
    /** Fingerprint of one machine set (Characterizer pool key). */
    static std::uint64_t
    machineSetFingerprint(const std::vector<uarch::MachineConfig> &machines);

    /** Recompute config_fingerprint_ over @p machines. */
    void fingerprintConfig(
        const std::vector<uarch::MachineConfig> &machines);

    ServiceConfig config_;

    // Immutable registry (filled in the constructor, then read-only).
    std::vector<suites::BenchmarkInfo> cpu2017_;
    std::vector<suites::BenchmarkInfo> cpu2006_;
    std::vector<suites::BenchmarkInfo> emerging_;
    std::map<std::string, const suites::BenchmarkInfo *> by_name_;
    std::vector<uarch::MachineConfig> profiling_machines_;
    std::vector<uarch::MachineConfig> sensitivity_machines_;
    std::vector<uarch::MachineConfig> memory_machines_;

    std::shared_ptr<CampaignStore> store_;

    mutable std::mutex mutex_;
    std::unique_ptr<ThreadPool> pool_;
    std::map<std::uint64_t, std::unique_ptr<Characterizer>>
        characterizers_;
    /** Machine count of the primary (first-pooled) set, for the manifest. */
    std::size_t primary_machine_count_ = 0;
    std::string config_fingerprint_;
};

} // namespace core
} // namespace speclens

#endif // SPECLENS_CORE_SERVICE_CONTEXT_H
