/**
 * @file
 * Shared query operations: the render-to-string core of the CLI's
 * `characterize`, `subset` and `sensitivity` commands.
 *
 * The batch CLI and the serve daemon must answer the same question
 * with byte-identical output (the serve-smoke check `cmp`s them), so
 * the rendering lives here, once, against a ServiceContext.  The CLI
 * prints the returned string to stdout; the server ships it back in a
 * response frame.  Neither path writes to stdout/stderr itself.
 */

#ifndef SPECLENS_CORE_QUERY_OPS_H
#define SPECLENS_CORE_QUERY_OPS_H

#include <cstddef>
#include <string>
#include <vector>

#include "core/service_context.h"

namespace speclens {
namespace core {

/** Result of one query: rendered output, or an error message. */
struct QueryOutcome
{
    /** False when the query was rejected (see error). */
    bool ok = true;

    /** Rendered report (exactly what the batch CLI prints to stdout). */
    std::string output;

    /** Human-readable rejection reason (no trailing newline). */
    std::string error;
};

/** Shorthand for a rejected outcome. */
QueryOutcome queryError(std::string message);

/**
 * True when @p name is a valid `subset` category
 * (speed-int / rate-int / speed-fp / rate-fp).
 */
bool isSubsetCategory(const std::string &name);

/** True when @p name is a valid `sensitivity` metric (branch/l1d/dtlb). */
bool isSensitivityMetric(const std::string &name);

/**
 * Characterize @p benchmarks (registry names) on the context's
 * profiling machines: one per-benchmark metric table, after fanning
 * all (benchmark, machine) simulations out through the shared pool.
 * Rejects on the first unknown benchmark name.
 */
QueryOutcome runCharacterizeQuery(ServiceContext &context,
                                  const std::vector<std::string> &benchmarks);

/**
 * Subset analysis for one CPU2017 @p category: dendrogram, the
 * @p k representatives and score-prediction accuracy.  Rejects unknown
 * categories and k outside [1, suite size].
 */
QueryOutcome runSubsetQuery(ServiceContext &context,
                            const std::string &category, std::size_t k);

/**
 * Sensitivity classification of CPU2017 under @p metric
 * (branch / l1d / dtlb) over the sensitivity machine set.
 */
QueryOutcome runSensitivityQuery(ServiceContext &context,
                                 const std::string &metric);

/**
 * Memory-centric characterization of @p benchmarks over the
 * suites::memoryCentricMachines() variants: per-benchmark tables of
 * prefetch coverage/accuracy/timeliness, way-prediction accuracy and
 * DRAM row-buffer/bandwidth behaviour.  Rejects on the first unknown
 * benchmark name.
 */
QueryOutcome runMemoryQuery(ServiceContext &context,
                            const std::vector<std::string> &benchmarks);

} // namespace core
} // namespace speclens

#endif // SPECLENS_CORE_QUERY_OPS_H
