/**
 * @file
 * Strict numeric option parsing shared by the CLI and the bench
 * harness.
 *
 * Command-line numbers used to go through strtoull/atoi, both of which
 * fail silently: "8x" parses as 8, "-1" wraps to a huge unsigned
 * value, and overflow saturates without a word.  A typo'd `--jobs`
 * or `--seed-salt` would then quietly run a different campaign than
 * the one asked for.  parseUnsigned() is built on std::from_chars and
 * rejects all of that explicitly, so every caller can exit 1 with a
 * message naming the defect instead of computing on garbage.
 */

#ifndef SPECLENS_CORE_OPTION_PARSE_H
#define SPECLENS_CORE_OPTION_PARSE_H

#include <charconv>
#include <cstdint>
#include <string>
#include <string_view>

namespace speclens {
namespace core {

/** Outcome of one strict unsigned parse. */
enum class ParseStatus {
    Ok,       //!< Whole input consumed, value in range.
    Empty,    //!< Input was empty.
    Signed,   //!< Leading '+' or '-' (unsigned options take neither).
    BadDigit, //!< Input does not start with a decimal digit.
    Trailing, //!< Digits followed by junk ("8x", "10 ").
    Overflow, //!< Value exceeds uint64_t.
};

/**
 * Parse @p text as a strict base-10 unsigned integer into @p out.
 * The whole input must be digits: no sign, no whitespace, no suffix.
 * @p out is written only on Ok.
 */
inline ParseStatus
parseUnsigned(std::string_view text, std::uint64_t &out)
{
    if (text.empty())
        return ParseStatus::Empty;
    if (text.front() == '+' || text.front() == '-')
        return ParseStatus::Signed;

    std::uint64_t value = 0;
    auto [ptr, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value, 10);
    if (ec == std::errc::result_out_of_range)
        return ParseStatus::Overflow;
    if (ec != std::errc())
        return ParseStatus::BadDigit;
    if (ptr != text.data() + text.size())
        return ParseStatus::Trailing;
    out = value;
    return ParseStatus::Ok;
}

/** Human-readable description of a parse failure. */
inline std::string
parseStatusDetail(ParseStatus status)
{
    switch (status) {
      case ParseStatus::Ok: return "ok";
      case ParseStatus::Empty: return "empty value";
      case ParseStatus::Signed:
          return "sign not allowed (value must be a plain non-negative "
                 "integer)";
      case ParseStatus::BadDigit: return "not a decimal number";
      case ParseStatus::Trailing: return "trailing characters after number";
      case ParseStatus::Overflow: return "value out of range";
    }
    return "unknown";
}

} // namespace core
} // namespace speclens

#endif // SPECLENS_CORE_OPTION_PARSE_H
