/**
 * @file
 * Analysis-session implementation.
 */

#include "analysis_session.h"

#include <cstdio>
#include <utility>

namespace speclens {
namespace core {

AnalysisSession::AnalysisSession(SessionConfig config)
    : characterizer_(std::make_unique<Characterizer>(
          std::move(config.machines), config.characterization))
{
    if (!config.store_dir.empty()) {
        store_ = std::make_shared<CampaignStore>(config.store_dir);
        characterizer_->attachStore(store_);
    }
}

AnalysisSession::~AnalysisSession()
{
    if (store_)
        std::fprintf(stderr, "%s\n", summary().c_str());
}

std::string
AnalysisSession::summary() const
{
    if (!store_)
        return "[speclens-store] disabled";
    StoreCounters c = store_->counters();
    std::size_t rejected =
        c.corrupt + c.stale_version + c.fingerprint_mismatch;
    // `computed` counts every simulation executed against the store,
    // including ones run outside the Characterizer (stability trials,
    // SimPoint probes and phased ground-truth runs).
    return "[speclens-store] dir=" + store_->directory() +
           " entries=" + std::to_string(store_->entryCount()) +
           " hits=" + std::to_string(c.hits) +
           " simulations=" + std::to_string(c.computed) +
           " saves=" + std::to_string(c.saves) +
           " rejected=" + std::to_string(rejected);
}

} // namespace core
} // namespace speclens
