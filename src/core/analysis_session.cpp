/**
 * @file
 * Analysis-session implementation.
 */

#include "analysis_session.h"

#include <cstdio>
#include <utility>

#include "obs/manifest.h"
#include "obs/metrics.h"
#include "stats/fingerprint.h"

namespace speclens {
namespace core {

namespace {

std::string
hex16(std::uint64_t value)
{
    char buffer[17];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(value));
    return std::string(buffer);
}

} // namespace

AnalysisSession::AnalysisSession(SessionConfig config)
    : characterizer_(std::make_unique<Characterizer>(
          std::move(config.machines), config.characterization))
{
    // Fingerprint the run configuration: anything that changes what a
    // campaign measures must change this, so manifests from different
    // configurations never look comparable.
    stats::Fingerprinter fp;
    fp.tag("speclens.session");
    fp.u64(kStoreEngineVersion);
    config.characterization.hashInto(fp);
    fp.u64(characterizer_->machines().size());
    for (const uarch::MachineConfig &machine :
         characterizer_->machines())
        machine.hashInto(fp);
    config_fingerprint_ = hex16(fp.value());

    if (!config.store_dir.empty()) {
        store_ = std::make_shared<CampaignStore>(config.store_dir);
        characterizer_->attachStore(store_);
    }
}

AnalysisSession::~AnalysisSession()
{
    if (!store_)
        return;
    std::fprintf(stderr, "%s\n", summary().c_str());

    StoreCounters c = store_->counters();
    obs::Manifest manifest;
    manifest.engine_version = kStoreEngineVersion;
    manifest.config_fingerprint = config_fingerprint_;
    manifest.run = {
        {"store_dir", store_->directory()},
        {"machines",
         std::to_string(characterizer_->machines().size())},
        {"metrics", obs::kMetricsEnabled ? "on" : "off"},
    };
    manifest.totals = {
        {"entries", store_->entryCount()},
        {"hits", c.hits},
        {"misses", c.misses},
        {"simulations", c.computed},
        {"saves", c.saves},
    };
    manifest.rejected = {
        {"corrupt", c.corrupt},
        {"stale_version", c.stale_version},
        {"fingerprint_mismatch", c.fingerprint_mismatch},
        {"orphaned_temp", c.orphaned_temp},
    };
    manifest.metrics = obs::Registry::global().snapshot();
    obs::writeManifest(store_->directory() + "/" +
                           obs::kManifestFileName,
                       manifest);
}

std::string
AnalysisSession::summary() const
{
    if (!store_)
        return "[speclens-store] disabled";
    StoreCounters c = store_->counters();
    std::size_t rejected = c.corrupt + c.stale_version +
                           c.fingerprint_mismatch + c.orphaned_temp;
    // `computed` counts every simulation executed against the store,
    // including ones run outside the Characterizer (stability trials,
    // SimPoint probes and phased ground-truth runs).
    return "[speclens-store] dir=" + store_->directory() +
           " entries=" + std::to_string(store_->entryCount()) +
           " hits=" + std::to_string(c.hits) +
           " simulations=" + std::to_string(c.computed) +
           " saves=" + std::to_string(c.saves) +
           " rejected=" + std::to_string(rejected);
}

} // namespace core
} // namespace speclens
