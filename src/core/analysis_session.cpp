/**
 * @file
 * Analysis-session implementation.
 */

#include "analysis_session.h"

#include <stdexcept>
#include <utility>

namespace speclens {
namespace core {

AnalysisSession::AnalysisSession(SessionConfig config)
{
    ServiceConfig service;
    service.characterization = config.characterization;
    service.store_dir = config.store_dir;
    context_ = std::make_shared<ServiceContext>(std::move(service));
    // First pooled set: pins the context's config fingerprint to this
    // machine set, matching the pre-split session computation.
    characterizer_ = &context_->characterizerFor(config.machines);
}

AnalysisSession::AnalysisSession(
    std::shared_ptr<ServiceContext> context,
    const std::vector<uarch::MachineConfig> &machines)
    : context_(std::move(context))
{
    if (!context_)
        throw std::invalid_argument("AnalysisSession: null context");
    characterizer_ = &context_->characterizerFor(machines);
}

AnalysisSession::AnalysisSession(std::shared_ptr<ServiceContext> context)
    : context_(std::move(context))
{
    if (!context_)
        throw std::invalid_argument("AnalysisSession: null context");
    characterizer_ =
        &context_->characterizerFor(context_->profilingMachines());
}

} // namespace core
} // namespace speclens
