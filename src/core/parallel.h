/**
 * @file
 * Minimal shared-memory parallelism utilities.
 *
 * The measurement campaigns this toolkit runs are embarrassingly
 * parallel: every (benchmark, machine) simulation is independent and
 * independently seeded, so work can be fanned out across threads with
 * no effect on results.  This header provides the two shapes the rest
 * of the code needs:
 *
 *  - parallelFor(): run a loop body over [0, count) on up to N worker
 *    threads, with the calling thread participating.  Exceptions thrown
 *    by the body are captured and the first one is rethrown on the
 *    caller once all workers have drained.
 *
 *  - ThreadPool: a reusable fixed-size pool with submit()/wait()
 *    semantics for callers that issue many irregular task batches and
 *    want to amortise thread start-up.
 *
 * Determinism contract: neither utility imposes any ordering on task
 * execution, so callers must make each task independent (no shared
 * mutable state without synchronisation, no order-dependent RNG use).
 * All campaign code in SpecLens keys results by task identity rather
 * than completion order, which is what makes output bit-identical for
 * any job count.
 */

#ifndef SPECLENS_CORE_PARALLEL_H
#define SPECLENS_CORE_PARALLEL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace speclens {
namespace core {

/**
 * Job count meaning "one per hardware thread": hardware_concurrency(),
 * or 1 when the runtime cannot determine it.
 */
std::size_t defaultJobCount();

/**
 * Resolve a user-facing jobs value: 0 means "auto" (defaultJobCount()),
 * anything else is taken literally.
 */
std::size_t resolveJobCount(std::size_t jobs);

/**
 * Run @p body(i) for every i in [0, @p count) using up to @p jobs
 * threads (0 = auto).  The calling thread participates, so jobs == 1
 * (or count <= 1) degenerates to a plain serial loop with no threads
 * created.  Indices are claimed from a shared atomic counter, so the
 * schedule is dynamic; bodies must therefore be independent of
 * execution order.
 *
 * If any body throws, remaining indices are abandoned (bodies already
 * running finish) and the first captured exception is rethrown on the
 * caller after all workers join.
 */
void parallelFor(std::size_t count, std::size_t jobs,
                 const std::function<void(std::size_t)> &body);

/**
 * Fixed-size reusable worker pool.
 *
 * submit() enqueues a task; wait() blocks until every submitted task
 * has finished and rethrows the first exception any task raised (the
 * others are dropped).  The destructor drains the queue before
 * joining, so letting a pool die is equivalent to wait() minus the
 * rethrow.
 */
class ThreadPool
{
  public:
    /** @param workers Worker threads; 0 means defaultJobCount(). */
    explicit ThreadPool(std::size_t workers = 0);

    /** Drains outstanding tasks, then joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    std::size_t size() const { return workers_.size(); }

    /** Enqueue @p task for execution on some worker. */
    void submit(std::function<void()> task);

    /**
     * Block until the queue is empty and no task is running, then
     * rethrow the first exception captured since the last wait().
     */
    void wait();

  private:
    /** A submitted task plus when it entered the queue (metrics). */
    struct QueuedTask
    {
        std::function<void()> fn;
        std::uint64_t enqueued_ns = 0;
    };

    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<QueuedTask> queue_;
    std::mutex mutex_;
    std::condition_variable task_ready_;
    std::condition_variable idle_;
    std::size_t running_ = 0;
    bool stopping_ = false;
    std::exception_ptr first_error_;
};

} // namespace core
} // namespace speclens

#endif // SPECLENS_CORE_PARALLEL_H
