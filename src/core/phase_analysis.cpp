/**
 * @file
 * SimPoint-style phase analysis implementation.
 */

#include "phase_analysis.h"

#include <limits>
#include <stdexcept>

#include "core/artifact_store.h"
#include "core/metrics.h"
#include "stats/distance.h"
#include "stats/kmeans.h"
#include "stats/normalize.h"
#include "uarch/simulation.h"

namespace speclens {
namespace core {

SimPointResult
simpointEstimate(const trace::PhasedWorkload &workload,
                 const uarch::MachineConfig &machine,
                 const SimPointConfig &config, CampaignStore *store)
{
    workload.validate();
    std::size_t num_phases = workload.phases.size();
    if (config.clusters < 1 || config.clusters > num_phases)
        throw std::invalid_argument("simpointEstimate: cluster count");

    // ----- Ground truth: the full phased run. -----
    uarch::SimulationConfig full_config;
    full_config.instructions = config.instructions;
    full_config.warmup = config.warmup;
    uarch::PhasedSimulationResult full =
        storedSimulatePhased(store, workload, machine, full_config);

    SimPointResult out;
    out.full_cpi = full.combined_cpi;
    out.full_l1d_mpki = full.combined_counters.l1dMpki();

    // ----- Profiling pass: short probe of every phase. -----
    std::vector<MetricVector> probes;
    std::vector<double> probe_cpi(num_phases);
    stats::Matrix features(num_phases, kCanonicalMetricCount);
    std::vector<Metric> canonical =
        metricsFor(MetricSelection::Canonical);
    for (std::size_t k = 0; k < num_phases; ++k) {
        uarch::SimulationConfig probe;
        probe.instructions = config.probe_instructions;
        probe.warmup = config.probe_warmup;
        uarch::SimulationResult r = storedSimulate(
            store, workload.phases[k].profile, machine, probe);
        MetricVector mv = extractMetrics(r);
        probes.push_back(mv);
        probe_cpi[k] = r.cpi();
        for (std::size_t m = 0; m < canonical.size(); ++m)
            features(k, m) = mv.get(canonical[m]);
    }

    // ----- Cluster phases and pick the medoid of each cluster. -----
    stats::Matrix z = stats::zscore(features);
    stats::KmeansResult clustering =
        stats::kmeans(z, config.clusters, /*seed=*/7);

    for (std::size_t c = 0; c < config.clusters; ++c) {
        std::vector<std::size_t> members = clustering.members(c);
        if (members.empty())
            continue;
        // Medoid in z-space.
        std::size_t medoid = members.front();
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t k : members) {
            double d = stats::distance(z.row(k),
                                       clustering.centroids.row(c));
            if (d < best) {
                best = d;
                medoid = k;
            }
        }
        double cluster_weight = 0.0;
        for (std::size_t k : members)
            cluster_weight += workload.phases[k].weight;

        out.representatives.push_back(medoid);
        out.weights.push_back(cluster_weight);
        out.simulated_fraction += workload.phases[medoid].weight;
    }

    // ----- Estimate whole-run behaviour from representatives. -----
    for (std::size_t i = 0; i < out.representatives.size(); ++i) {
        std::size_t rep = out.representatives[i];
        out.estimated_cpi += out.weights[i] * probe_cpi[rep];
        out.estimated_l1d_mpki +=
            out.weights[i] * probes[rep].get(Metric::L1dMpki);
    }

    out.cpi_error_pct =
        out.full_cpi > 0.0
            ? 100.0 * std::fabs(out.estimated_cpi - out.full_cpi) /
                  out.full_cpi
            : 0.0;
    out.l1d_error_pct =
        out.full_l1d_mpki > 0.0
            ? 100.0 *
                  std::fabs(out.estimated_l1d_mpki - out.full_l1d_mpki) /
                  out.full_l1d_mpki
            : 0.0;
    return out;
}

} // namespace core
} // namespace speclens
