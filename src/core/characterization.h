/**
 * @file
 * The measurement campaign: every benchmark on every machine.
 *
 * This is the SpecLens equivalent of the paper's perf-counter
 * experiments — each (benchmark, machine) pair is simulated once and
 * its metric vector memoised, then feature matrices for any analysis
 * (full suite, sub-suite, metric subset, machine subset) are assembled
 * from the cache.  Treating each performance-counter/machine pair as a
 * distinct feature reproduces the paper's 20 x 7 = 140-metric design.
 *
 * The pairs are mutually independent and independently seeded, so the
 * campaign is embarrassingly parallel: prepare() (used internally by
 * featureMatrix()) fans uncached pairs out across worker threads, and
 * the memo cache is safe to query from multiple threads concurrently.
 * Results are bit-identical for any job count.
 */

#ifndef SPECLENS_CORE_CHARACTERIZATION_H
#define SPECLENS_CORE_CHARACTERIZATION_H

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "stats/fingerprint.h"
#include "stats/matrix.h"
#include "suites/benchmark_info.h"
#include "core/artifact_store.h"
#include "core/metrics.h"
#include "uarch/machine.h"
#include "uarch/simulation.h"

namespace speclens {
namespace core {

class ThreadPool;

/** Measurement-campaign parameters. */
struct CharacterizationConfig
{
    /** Measured instructions per (benchmark, machine) simulation. */
    std::uint64_t instructions = 120'000;

    /** Warm-up instructions excluded from the counters. */
    std::uint64_t warmup = 30'000;

    /** Seed salt forwarded to the trace generator. */
    std::uint64_t seed_salt = 0;

    /**
     * Worker threads used by prepare()/featureMatrix() to fan the
     * independent (benchmark, machine) simulations out.  0 means one
     * per hardware thread.  Results are bit-identical for any value:
     * every pair is independently seeded and the feature layout is
     * fixed by (benchmark, machine) identity, not completion order.
     */
    std::size_t jobs = 0;

    /**
     * The equivalent per-simulation window (default transform and
     * prewarm behaviour).
     */
    uarch::SimulationConfig simulationConfig() const;

    /**
     * Feed the result-determining window parameters (instructions,
     * warmup, seed_salt) to @p fp.  `jobs` is deliberately excluded:
     * results are bit-identical for any thread count, so campaigns run
     * at different parallelism share store entries.
     */
    void hashInto(stats::Fingerprinter &fp) const;
};

/**
 * Store address of one (profile, machine, window) measurement: the
 * engine version, the campaign window, the full workload model and the
 * full machine model all feed the fingerprint, so changing any of them
 * re-addresses the entry and stale data stops being found.
 */
StoreKey makeStoreKey(const trace::WorkloadProfile &profile,
                      const uarch::MachineConfig &machine,
                      const CharacterizationConfig &config);

/** Runs and memoises benchmark-on-machine measurements. */
class Characterizer
{
  public:
    /**
     * @param machines Machines to measure on (order defines feature
     *        layout).
     * @param config Simulation window parameters.
     */
    explicit Characterizer(std::vector<uarch::MachineConfig> machines,
                           CharacterizationConfig config = {});

    /** Machines in feature order. */
    const std::vector<uarch::MachineConfig> &machines() const
    {
        return machines_;
    }

    /**
     * Attach a persistent artifact store.  From then on every cache
     * miss first consults the store, and every fresh simulation is
     * persisted, so a later process (any bench binary, CLI command or
     * test sharing the directory) replays the campaign without
     * simulating.  Corrupt or stale entries are recomputed and
     * overwritten.  A null store detaches.
     */
    void attachStore(std::shared_ptr<CampaignStore> store);

    /** The attached store; null when none. */
    CampaignStore *store() const { return store_.get(); }

    /**
     * Attach a shared worker pool.  prepare() then fans missing pairs
     * out as pool tasks instead of spawning its own threads, so
     * concurrent campaigns against one ServiceContext share a single
     * bounded set of workers.  The pool must outlive this instance
     * (the ServiceContext owns both).  Null detaches.
     *
     * Caveat: ThreadPool::wait() drains the whole queue, so a
     * prepare() may also wait out tasks a concurrent prepare()
     * submitted — a latency (never correctness) cost.  Must not be
     * called from a task running on the same pool.
     */
    void setWorkerPool(ThreadPool *pool) { pool_ = pool; }

    /**
     * Number of actual simulations this instance ran (store hits and
     * memo hits excluded).  A warm run over a populated store keeps
     * this at zero — the acceptance check behind `--store` reuse.
     */
    std::size_t simulationsRun() const
    {
        return simulations_run_.load(std::memory_order_relaxed);
    }

    /** Store key for one (benchmark, machine) pair of this campaign. */
    StoreKey storeKey(const suites::BenchmarkInfo &benchmark,
                      std::size_t machine_index) const;

    /**
     * Simulate every missing (benchmark, machine) pair of the cross
     * product @p benchmarks x @p machine_indices, fanning the work out
     * across worker threads, and memoise the results.  Pairs already
     * cached are skipped.  After prepare() returns, simulation() and
     * metrics() for those pairs are pure cache lookups.
     *
     * Each pair is simulated by an independent, independently seeded
     * generator, so the cached results are bit-identical to what the
     * serial on-demand path produces, for any thread count.
     *
     * @param jobs Worker threads; 0 falls back to the config's jobs
     *        value (whose own 0 means one per hardware thread).
     */
    void prepare(const std::vector<suites::BenchmarkInfo> &benchmarks,
                 const std::vector<std::size_t> &machine_indices,
                 std::size_t jobs = 0);

    /** prepare() over all machines. */
    void prepare(const std::vector<suites::BenchmarkInfo> &benchmarks,
                 std::size_t jobs = 0);

    /** Full simulation result for one pair (memoised). */
    const uarch::SimulationResult &
    simulation(const suites::BenchmarkInfo &benchmark,
               std::size_t machine_index);

    /** Metric vector for one pair (memoised). */
    MetricVector metrics(const suites::BenchmarkInfo &benchmark,
                         std::size_t machine_index);

    /**
     * Assemble the observations-by-features matrix for @p benchmarks:
     * row b holds, for each machine in order, the selected metrics in
     * metricsFor() order.  With the canonical selection and seven
     * machines this is the paper's 140-column matrix.
     */
    stats::Matrix
    featureMatrix(const std::vector<suites::BenchmarkInfo> &benchmarks,
                  MetricSelection selection = MetricSelection::Canonical);

    /**
     * Same, but restricted to a subset of machines given by index
     * (e.g. the three RAPL machines for the power analysis).
     */
    stats::Matrix
    featureMatrix(const std::vector<suites::BenchmarkInfo> &benchmarks,
                  MetricSelection selection,
                  const std::vector<std::size_t> &machine_indices);

    /** Feature names matching featureMatrix columns. */
    std::vector<std::string>
    featureNames(MetricSelection selection = MetricSelection::Canonical)
        const;

    /** Feature names for a machine subset. */
    std::vector<std::string>
    featureNames(MetricSelection selection,
                 const std::vector<std::size_t> &machine_indices) const;

    /** Number of memoised (benchmark, machine) measurements. */
    std::size_t cachedMeasurements() const
    {
        std::lock_guard<std::mutex> lock(cache_mutex_);
        return cache_.size();
    }

  private:
    using CacheKey = std::pair<std::string, std::size_t>;

    /** Run one uncached simulation (no lock held). */
    uarch::SimulationResult
    runSimulation(const suites::BenchmarkInfo &benchmark,
                  std::size_t machine_index) const;

    /**
     * Produce the result for one pair not in the memo cache: consult
     * the store (when attached), fall back to simulation, persist
     * fresh results.  No lock held; safe from worker threads.
     */
    uarch::SimulationResult
    obtainResult(const suites::BenchmarkInfo &benchmark,
                 std::size_t machine_index);

    /**
     * Memoised result for one pair, computed at most once across all
     * concurrent callers: the first thread to claim a missing pair
     * becomes its leader (store lookup / simulation / persist); racers
     * block on a shared future and reuse the leader's result.  The
     * returned reference is stable (std::map node).
     */
    const uarch::SimulationResult &
    ensureResult(const suites::BenchmarkInfo &benchmark,
                 std::size_t machine_index);

    std::vector<uarch::MachineConfig> machines_;
    CharacterizationConfig config_;
    std::shared_ptr<CampaignStore> store_;
    ThreadPool *pool_ = nullptr;
    std::atomic<std::size_t> simulations_run_{0};

    /**
     * Memo cache of finished measurements, shared across worker
     * threads.  A std::map keeps references stable across concurrent
     * inserts, so simulation() can hand out long-lived references
     * while other threads keep filling the cache.  The mutex guards
     * only lookups and inserts — simulations themselves run unlocked.
     */
    mutable std::mutex cache_mutex_;
    std::map<CacheKey, uarch::SimulationResult> cache_;

    /**
     * In-flight dedup map: one shared future per pair currently being
     * measured.  Entries point into cache_ once fulfilled and are
     * erased by the leader, so the map only ever holds the (few)
     * pairs actively simulating.  Never held together with
     * cache_mutex_.
     */
    std::mutex inflight_mutex_;
    std::map<CacheKey, std::shared_future<const uarch::SimulationResult *>>
        inflight_;
};

} // namespace core
} // namespace speclens

#endif // SPECLENS_CORE_CHARACTERIZATION_H
