/**
 * @file
 * The measurement campaign: every benchmark on every machine.
 *
 * This is the SpecLens equivalent of the paper's perf-counter
 * experiments — each (benchmark, machine) pair is simulated once and
 * its metric vector memoised, then feature matrices for any analysis
 * (full suite, sub-suite, metric subset, machine subset) are assembled
 * from the cache.  Treating each performance-counter/machine pair as a
 * distinct feature reproduces the paper's 20 x 7 = 140-metric design.
 *
 * The pairs are mutually independent and independently seeded, so the
 * campaign is embarrassingly parallel: prepare() (used internally by
 * featureMatrix()) fans uncached pairs out across worker threads, and
 * the memo cache is safe to query from multiple threads concurrently.
 * Results are bit-identical for any job count.
 */

#ifndef SPECLENS_CORE_CHARACTERIZATION_H
#define SPECLENS_CORE_CHARACTERIZATION_H

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "stats/matrix.h"
#include "suites/benchmark_info.h"
#include "core/metrics.h"
#include "uarch/machine.h"
#include "uarch/simulation.h"

namespace speclens {
namespace core {

/** Measurement-campaign parameters. */
struct CharacterizationConfig
{
    /** Measured instructions per (benchmark, machine) simulation. */
    std::uint64_t instructions = 120'000;

    /** Warm-up instructions excluded from the counters. */
    std::uint64_t warmup = 30'000;

    /** Seed salt forwarded to the trace generator. */
    std::uint64_t seed_salt = 0;

    /**
     * Worker threads used by prepare()/featureMatrix() to fan the
     * independent (benchmark, machine) simulations out.  0 means one
     * per hardware thread.  Results are bit-identical for any value:
     * every pair is independently seeded and the feature layout is
     * fixed by (benchmark, machine) identity, not completion order.
     */
    std::size_t jobs = 0;
};

/** Runs and memoises benchmark-on-machine measurements. */
class Characterizer
{
  public:
    /**
     * @param machines Machines to measure on (order defines feature
     *        layout).
     * @param config Simulation window parameters.
     */
    explicit Characterizer(std::vector<uarch::MachineConfig> machines,
                           CharacterizationConfig config = {});

    /** Machines in feature order. */
    const std::vector<uarch::MachineConfig> &machines() const
    {
        return machines_;
    }

    /**
     * Simulate every missing (benchmark, machine) pair of the cross
     * product @p benchmarks x @p machine_indices, fanning the work out
     * across worker threads, and memoise the results.  Pairs already
     * cached are skipped.  After prepare() returns, simulation() and
     * metrics() for those pairs are pure cache lookups.
     *
     * Each pair is simulated by an independent, independently seeded
     * generator, so the cached results are bit-identical to what the
     * serial on-demand path produces, for any thread count.
     *
     * @param jobs Worker threads; 0 falls back to the config's jobs
     *        value (whose own 0 means one per hardware thread).
     */
    void prepare(const std::vector<suites::BenchmarkInfo> &benchmarks,
                 const std::vector<std::size_t> &machine_indices,
                 std::size_t jobs = 0);

    /** prepare() over all machines. */
    void prepare(const std::vector<suites::BenchmarkInfo> &benchmarks,
                 std::size_t jobs = 0);

    /** Full simulation result for one pair (memoised). */
    const uarch::SimulationResult &
    simulation(const suites::BenchmarkInfo &benchmark,
               std::size_t machine_index);

    /** Metric vector for one pair (memoised). */
    MetricVector metrics(const suites::BenchmarkInfo &benchmark,
                         std::size_t machine_index);

    /**
     * Assemble the observations-by-features matrix for @p benchmarks:
     * row b holds, for each machine in order, the selected metrics in
     * metricsFor() order.  With the canonical selection and seven
     * machines this is the paper's 140-column matrix.
     */
    stats::Matrix
    featureMatrix(const std::vector<suites::BenchmarkInfo> &benchmarks,
                  MetricSelection selection = MetricSelection::Canonical);

    /**
     * Same, but restricted to a subset of machines given by index
     * (e.g. the three RAPL machines for the power analysis).
     */
    stats::Matrix
    featureMatrix(const std::vector<suites::BenchmarkInfo> &benchmarks,
                  MetricSelection selection,
                  const std::vector<std::size_t> &machine_indices);

    /** Feature names matching featureMatrix columns. */
    std::vector<std::string>
    featureNames(MetricSelection selection = MetricSelection::Canonical)
        const;

    /** Feature names for a machine subset. */
    std::vector<std::string>
    featureNames(MetricSelection selection,
                 const std::vector<std::size_t> &machine_indices) const;

    /** Number of memoised (benchmark, machine) measurements. */
    std::size_t cachedMeasurements() const
    {
        std::lock_guard<std::mutex> lock(cache_mutex_);
        return cache_.size();
    }

  private:
    using CacheKey = std::pair<std::string, std::size_t>;

    /** Run one uncached simulation (no lock held). */
    uarch::SimulationResult
    runSimulation(const suites::BenchmarkInfo &benchmark,
                  std::size_t machine_index) const;

    std::vector<uarch::MachineConfig> machines_;
    CharacterizationConfig config_;

    /**
     * Memo cache of finished measurements, shared across worker
     * threads.  A std::map keeps references stable across concurrent
     * inserts, so simulation() can hand out long-lived references
     * while other threads keep filling the cache.  The mutex guards
     * only lookups and inserts — simulations themselves run unlocked.
     */
    mutable std::mutex cache_mutex_;
    std::map<CacheKey, uarch::SimulationResult> cache_;
};

} // namespace core
} // namespace speclens

#endif // SPECLENS_CORE_CHARACTERIZATION_H
