/**
 * @file
 * The measurement campaign: every benchmark on every machine.
 *
 * This is the SpecLens equivalent of the paper's perf-counter
 * experiments — each (benchmark, machine) pair is simulated once and
 * its metric vector memoised, then feature matrices for any analysis
 * (full suite, sub-suite, metric subset, machine subset) are assembled
 * from the cache.  Treating each performance-counter/machine pair as a
 * distinct feature reproduces the paper's 20 x 7 = 140-metric design.
 */

#ifndef SPECLENS_CORE_CHARACTERIZATION_H
#define SPECLENS_CORE_CHARACTERIZATION_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "stats/matrix.h"
#include "suites/benchmark_info.h"
#include "core/metrics.h"
#include "uarch/machine.h"
#include "uarch/simulation.h"

namespace speclens {
namespace core {

/** Measurement-campaign parameters. */
struct CharacterizationConfig
{
    /** Measured instructions per (benchmark, machine) simulation. */
    std::uint64_t instructions = 120'000;

    /** Warm-up instructions excluded from the counters. */
    std::uint64_t warmup = 30'000;

    /** Seed salt forwarded to the trace generator. */
    std::uint64_t seed_salt = 0;
};

/** Runs and memoises benchmark-on-machine measurements. */
class Characterizer
{
  public:
    /**
     * @param machines Machines to measure on (order defines feature
     *        layout).
     * @param config Simulation window parameters.
     */
    explicit Characterizer(std::vector<uarch::MachineConfig> machines,
                           CharacterizationConfig config = {});

    /** Machines in feature order. */
    const std::vector<uarch::MachineConfig> &machines() const
    {
        return machines_;
    }

    /** Full simulation result for one pair (memoised). */
    const uarch::SimulationResult &
    simulation(const suites::BenchmarkInfo &benchmark,
               std::size_t machine_index);

    /** Metric vector for one pair (memoised). */
    MetricVector metrics(const suites::BenchmarkInfo &benchmark,
                         std::size_t machine_index);

    /**
     * Assemble the observations-by-features matrix for @p benchmarks:
     * row b holds, for each machine in order, the selected metrics in
     * metricsFor() order.  With the canonical selection and seven
     * machines this is the paper's 140-column matrix.
     */
    stats::Matrix
    featureMatrix(const std::vector<suites::BenchmarkInfo> &benchmarks,
                  MetricSelection selection = MetricSelection::Canonical);

    /**
     * Same, but restricted to a subset of machines given by index
     * (e.g. the three RAPL machines for the power analysis).
     */
    stats::Matrix
    featureMatrix(const std::vector<suites::BenchmarkInfo> &benchmarks,
                  MetricSelection selection,
                  const std::vector<std::size_t> &machine_indices);

    /** Feature names matching featureMatrix columns. */
    std::vector<std::string>
    featureNames(MetricSelection selection = MetricSelection::Canonical)
        const;

    /** Feature names for a machine subset. */
    std::vector<std::string>
    featureNames(MetricSelection selection,
                 const std::vector<std::size_t> &machine_indices) const;

    /** Number of memoised (benchmark, machine) measurements. */
    std::size_t cachedMeasurements() const { return cache_.size(); }

  private:
    std::vector<uarch::MachineConfig> machines_;
    CharacterizationConfig config_;
    std::map<std::pair<std::string, std::size_t>, uarch::SimulationResult>
        cache_;
};

} // namespace core
} // namespace speclens

#endif // SPECLENS_CORE_CHARACTERIZATION_H
