/**
 * @file
 * Sensitivity classification implementation.
 */

#include "sensitivity.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"

namespace speclens {
namespace core {

std::string
sensitivityClassName(SensitivityClass cls)
{
    switch (cls) {
      case SensitivityClass::Low: return "Low";
      case SensitivityClass::Medium: return "Medium";
      case SensitivityClass::High: return "High";
    }
    return "unknown";
}

std::vector<std::string>
SensitivityReport::names(SensitivityClass cls) const
{
    std::vector<std::string> out;
    for (const SensitivityEntry &e : entries)
        if (e.cls == cls)
            out.push_back(e.benchmark);
    return out;
}

SensitivityReport
classifySensitivity(Characterizer &characterizer,
                    const std::vector<suites::BenchmarkInfo> &benchmarks,
                    Metric metric, double high_fraction,
                    double medium_fraction)
{
    std::size_t n = benchmarks.size();
    std::size_t n_machines = characterizer.machines().size();

    // Fan the whole campaign out across worker threads up front; the
    // per-pair lookups below then hit the memo cache.
    characterizer.prepare(benchmarks);

    // Metric values: per machine, per benchmark.
    std::vector<std::vector<double>> values(n_machines,
                                            std::vector<double>(n));
    for (std::size_t m = 0; m < n_machines; ++m)
        for (std::size_t b = 0; b < n; ++b)
            values[m][b] = characterizer.metrics(benchmarks[b], m)
                               .get(metric);

    // Per-machine fractional ranks, then per-benchmark spread.
    std::vector<std::vector<double>> rank_by_machine(n_machines);
    for (std::size_t m = 0; m < n_machines; ++m)
        rank_by_machine[m] = stats::ranks(values[m]);

    SensitivityReport report;
    report.metric = metric;
    for (std::size_t b = 0; b < n; ++b) {
        SensitivityEntry e;
        e.benchmark = benchmarks[b].name;
        double lo = rank_by_machine[0][b], hi = lo;
        double sum = 0.0;
        for (std::size_t m = 0; m < n_machines; ++m) {
            lo = std::min(lo, rank_by_machine[m][b]);
            hi = std::max(hi, rank_by_machine[m][b]);
            sum += values[m][b];
        }
        e.rank_spread = hi - lo;
        e.mean_value = sum / static_cast<double>(n_machines);
        report.entries.push_back(std::move(e));
    }

    std::stable_sort(report.entries.begin(), report.entries.end(),
                     [](const SensitivityEntry &a,
                        const SensitivityEntry &b) {
                         return a.rank_spread > b.rank_spread;
                     });

    auto count_for = [n](double fraction) {
        return static_cast<std::size_t>(
            std::ceil(fraction * static_cast<double>(n)));
    };
    std::size_t n_high = count_for(high_fraction);
    std::size_t n_medium = count_for(medium_fraction);
    for (std::size_t i = 0; i < report.entries.size(); ++i) {
        if (i < n_high)
            report.entries[i].cls = SensitivityClass::High;
        else if (i < n_high + n_medium)
            report.entries[i].cls = SensitivityClass::Medium;
        else
            report.entries[i].cls = SensitivityClass::Low;
    }
    return report;
}

} // namespace core
} // namespace speclens
