/**
 * @file
 * Rate-vs-speed comparison (Section IV-D).
 *
 * SPEC CPU2017 ships most benchmarks in both a rate and a speed
 * version that differ in input size, compilation flags and runtime.
 * The paper asks whether those differences show up at the
 * micro-architectural level and finds that most pairs are nearly
 * identical, with a handful of exceptions (imagick and bwaves most
 * prominently in FP; omnetpp, xalancbmk and x264 in INT).  This module
 * measures every pair's distance in a joint PC space and ranks them.
 */

#ifndef SPECLENS_CORE_RATE_SPEED_H
#define SPECLENS_CORE_RATE_SPEED_H

#include <string>
#include <vector>

#include "core/characterization.h"
#include "core/similarity.h"

namespace speclens {
namespace core {

/** One rate/speed pair's comparison. */
struct RateSpeedPair
{
    std::string rate;      //!< Rate-version name (5xx).
    std::string speed;     //!< Speed-version name (6xx).
    double pc_distance = 0.0;   //!< Euclidean distance in PC space.
    double cophenetic = 0.0;    //!< Dendrogram linkage distance.
};

/** Comparison over the whole suite. */
struct RateSpeedAnalysis
{
    /** Joint similarity analysis over all rate + speed benchmarks. */
    SimilarityResult similarity;

    /** All pairs, sorted by descending PC distance (most different
     *  first). */
    std::vector<RateSpeedPair> pairs;

    /** Median pair distance, the "most pairs are similar" yardstick. */
    double median_distance = 0.0;
};

/**
 * Compare all rate/speed pairs of CPU2017 under one of the two
 * category groupings the paper uses.
 *
 * @param characterizer Shared measurement campaign.
 * @param fp true compares the FP pairs, false the INT pairs.
 * @param config Similarity pipeline configuration.
 */
RateSpeedAnalysis analyzeRateSpeed(Characterizer &characterizer, bool fp,
                                   const SimilarityConfig &config = {});

} // namespace core
} // namespace speclens

#endif // SPECLENS_CORE_RATE_SPEED_H
