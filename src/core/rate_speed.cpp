/**
 * @file
 * Rate-vs-speed analysis implementation.
 */

#include "rate_speed.h"

#include <algorithm>

#include "stats/descriptive.h"
#include "suites/spec2017.h"

namespace speclens {
namespace core {

RateSpeedAnalysis
analyzeRateSpeed(Characterizer &characterizer, bool fp,
                 const SimilarityConfig &config)
{
    std::vector<suites::BenchmarkInfo> benchmarks =
        fp ? suites::spec2017RateFp() : suites::spec2017RateInt();
    std::vector<suites::BenchmarkInfo> speed =
        fp ? suites::spec2017SpeedFp() : suites::spec2017SpeedInt();
    for (const suites::BenchmarkInfo &b : speed)
        benchmarks.push_back(b);

    RateSpeedAnalysis out;
    out.similarity = analyzeSimilarity(
        characterizer.featureMatrix(benchmarks),
        suites::benchmarkNames(benchmarks), config);

    const SimilarityResult &sim = out.similarity;
    for (const suites::BenchmarkInfo &b : benchmarks) {
        // Walk rate benchmarks only; partner links the speed version.
        if (b.category != suites::Category::RateInt &&
            b.category != suites::Category::RateFp) {
            continue;
        }
        if (b.partner.empty())
            continue;

        RateSpeedPair pair;
        pair.rate = b.name;
        pair.speed = b.partner;
        std::size_t ri = sim.indexOf(pair.rate);
        std::size_t si = sim.indexOf(pair.speed);
        pair.pc_distance = sim.pcDistance(ri, si);
        pair.cophenetic = sim.dendrogram.copheneticDistance(ri, si);
        out.pairs.push_back(std::move(pair));
    }

    std::sort(out.pairs.begin(), out.pairs.end(),
              [](const RateSpeedPair &a, const RateSpeedPair &b) {
                  return a.pc_distance > b.pc_distance;
              });

    std::vector<double> distances;
    distances.reserve(out.pairs.size());
    for (const RateSpeedPair &p : out.pairs)
        distances.push_back(p.pc_distance);
    if (!distances.empty())
        out.median_distance = stats::median(distances);
    return out;
}

} // namespace core
} // namespace speclens
