/**
 * @file
 * Measurement campaign implementation.
 */

#include "characterization.h"

#include <set>
#include <stdexcept>
#include <utility>

#include "core/parallel.h"
#include "obs/metrics.h"

namespace speclens {
namespace core {

uarch::SimulationConfig
CharacterizationConfig::simulationConfig() const
{
    uarch::SimulationConfig sim;
    sim.instructions = instructions;
    sim.warmup = warmup;
    sim.seed_salt = seed_salt;
    return sim;
}

void
CharacterizationConfig::hashInto(stats::Fingerprinter &fp) const
{
    // Delegate to the canonical window hash so campaign entries and
    // raw storedSimulate() entries with the same window share a
    // fingerprint (and therefore a store entry).
    simulationConfig().hashInto(fp);
}

StoreKey
makeStoreKey(const trace::WorkloadProfile &profile,
             const uarch::MachineConfig &machine,
             const CharacterizationConfig &config)
{
    return makeStoreKey(profile, machine, config.simulationConfig());
}

Characterizer::Characterizer(std::vector<uarch::MachineConfig> machines,
                             CharacterizationConfig config)
    : machines_(std::move(machines)), config_(config)
{
    if (machines_.empty())
        throw std::invalid_argument("Characterizer: no machines");
#ifdef SPECLENS_VALIDATE
    // Startup assertions (configure with -DSPECLENS_VALIDATE=ON): a
    // malformed machine model corrupts every measurement silently, so
    // fail fast before any simulation runs.
    for (const uarch::MachineConfig &machine : machines_)
        uarch::validateMachineConfig(machine);
#endif
}

uarch::SimulationResult
Characterizer::runSimulation(const suites::BenchmarkInfo &benchmark,
                             std::size_t machine_index) const
{
    static obs::Timing &simulate_time =
        obs::Registry::global().timing("core.characterize.simulate");
    obs::Span span(simulate_time);
    return uarch::simulate(benchmark.profile, machines_[machine_index],
                           config_.simulationConfig());
}

void
Characterizer::attachStore(std::shared_ptr<CampaignStore> store)
{
    store_ = std::move(store);
}

StoreKey
Characterizer::storeKey(const suites::BenchmarkInfo &benchmark,
                        std::size_t machine_index) const
{
    if (machine_index >= machines_.size())
        throw std::out_of_range("Characterizer::storeKey: machine index");
    return makeStoreKey(benchmark.profile, machines_[machine_index],
                        config_);
}

uarch::SimulationResult
Characterizer::obtainResult(const suites::BenchmarkInfo &benchmark,
                            std::size_t machine_index)
{
    static obs::Counter &simulations =
        obs::Registry::global().counter("core.characterize.simulations");
    if (store_) {
        StoreKey key = storeKey(benchmark, machine_index);
        uarch::SimulationResult loaded;
        if (store_->load(key, loaded) == StoreStatus::Hit)
            return loaded;
        // Miss, or a defensive rejection (corrupt / stale / mismatched
        // entry): recompute and overwrite with a fresh entry.
        uarch::SimulationResult result =
            runSimulation(benchmark, machine_index);
        simulations_run_.fetch_add(1, std::memory_order_relaxed);
        simulations.add();
        store_->recordComputed();
        store_->save(key, result);
        return result;
    }
    uarch::SimulationResult result =
        runSimulation(benchmark, machine_index);
    simulations_run_.fetch_add(1, std::memory_order_relaxed);
    simulations.add();
    return result;
}

const uarch::SimulationResult &
Characterizer::ensureResult(const suites::BenchmarkInfo &benchmark,
                            std::size_t machine_index)
{
    static obs::Counter &memo_hits =
        obs::Registry::global().counter("core.characterize.memo_hits");
    static obs::Counter &dedup_shared =
        obs::Registry::global().counter("core.characterize.dedup_shared");

    CacheKey key{benchmark.profile.name, machine_index};
    {
        std::lock_guard<std::mutex> lock(cache_mutex_);
        auto it = cache_.find(key);
        if (it != cache_.end()) {
            memo_hits.add();
            return it->second;
        }
    }

    // Claim leadership of the pair, or join an in-flight measurement.
    std::promise<const uarch::SimulationResult *> promise;
    std::shared_future<const uarch::SimulationResult *> shared;
    bool leader = false;
    {
        std::lock_guard<std::mutex> lock(inflight_mutex_);
        auto it = inflight_.find(key);
        if (it != inflight_.end()) {
            shared = it->second;
        } else {
            // The previous leader may have finished (cache insert,
            // then inflight erase) between our two lookups.
            {
                std::lock_guard<std::mutex> cache_lock(cache_mutex_);
                auto hit = cache_.find(key);
                if (hit != cache_.end()) {
                    memo_hits.add();
                    return hit->second;
                }
            }
            shared = promise.get_future().share();
            inflight_.emplace(key, shared);
            leader = true;
        }
    }

    if (!leader) {
        dedup_shared.add();
        return *shared.get(); // rethrows the leader's exception
    }

    try {
        uarch::SimulationResult result =
            obtainResult(benchmark, machine_index);
        const uarch::SimulationResult *stable = nullptr;
        {
            std::lock_guard<std::mutex> lock(cache_mutex_);
            stable =
                &cache_.emplace(std::move(key), std::move(result))
                     .first->second;
        }
        {
            std::lock_guard<std::mutex> lock(inflight_mutex_);
            inflight_.erase(
                CacheKey{benchmark.profile.name, machine_index});
        }
        promise.set_value(stable);
        return *stable;
    } catch (...) {
        {
            std::lock_guard<std::mutex> lock(inflight_mutex_);
            inflight_.erase(
                CacheKey{benchmark.profile.name, machine_index});
        }
        promise.set_exception(std::current_exception());
        throw;
    }
}

void
Characterizer::prepare(
    const std::vector<suites::BenchmarkInfo> &benchmarks,
    const std::vector<std::size_t> &machine_indices, std::size_t jobs)
{
    // Collect the distinct pairs not yet memoised.  Holding the lock
    // here is cheap: only map lookups, no simulation.
    std::vector<std::pair<const suites::BenchmarkInfo *, std::size_t>>
        missing;
    {
        std::set<CacheKey> scheduled;
        std::lock_guard<std::mutex> lock(cache_mutex_);
        for (const suites::BenchmarkInfo &benchmark : benchmarks) {
            for (std::size_t mi : machine_indices) {
                if (mi >= machines_.size())
                    throw std::out_of_range(
                        "Characterizer::prepare: machine index");
                CacheKey key{benchmark.profile.name, mi};
                if (cache_.find(key) != cache_.end())
                    continue;
                if (!scheduled.insert(std::move(key)).second)
                    continue;
                missing.emplace_back(&benchmark, mi);
            }
        }
    }
    if (missing.empty())
        return;

#ifdef SPECLENS_VALIDATE
    // Validate each profile once before fanning the campaign out, so a
    // broken model aborts with a field name instead of producing a
    // plausible-looking feature matrix.
    for (const auto &[benchmark, mi] : missing) {
        (void)mi;
        benchmark->profile.validate();
    }
#endif

    // ensureResult() memoises and dedups against concurrent callers,
    // so the fan-out body is a bare call whether it runs on the shared
    // pool (ServiceContext) or on prepare()'s own transient threads.
    if (pool_) {
        for (const auto &pair : missing) {
            pool_->submit([this, pair] {
                ensureResult(*pair.first, pair.second);
            });
        }
        pool_->wait();
        return;
    }
    parallelFor(missing.size(), jobs == 0 ? config_.jobs : jobs,
                [&](std::size_t i) {
                    const auto &[benchmark, mi] = missing[i];
                    ensureResult(*benchmark, mi);
                });
}

void
Characterizer::prepare(
    const std::vector<suites::BenchmarkInfo> &benchmarks, std::size_t jobs)
{
    std::vector<std::size_t> all(machines_.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = i;
    prepare(benchmarks, all, jobs);
}

const uarch::SimulationResult &
Characterizer::simulation(const suites::BenchmarkInfo &benchmark,
                          std::size_t machine_index)
{
    if (machine_index >= machines_.size())
        throw std::out_of_range("Characterizer: machine index");
    // ensureResult() runs the measurement outside any lock (concurrent
    // misses on different pairs proceed in parallel) and dedups racers
    // on the same pair through the in-flight future map, so the work
    // happens exactly once.
    return ensureResult(benchmark, machine_index);
}

MetricVector
Characterizer::metrics(const suites::BenchmarkInfo &benchmark,
                       std::size_t machine_index)
{
    return extractMetrics(simulation(benchmark, machine_index));
}

stats::Matrix
Characterizer::featureMatrix(
    const std::vector<suites::BenchmarkInfo> &benchmarks,
    MetricSelection selection)
{
    std::vector<std::size_t> all(machines_.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = i;
    return featureMatrix(benchmarks, selection, all);
}

stats::Matrix
Characterizer::featureMatrix(
    const std::vector<suites::BenchmarkInfo> &benchmarks,
    MetricSelection selection,
    const std::vector<std::size_t> &machine_indices)
{
    prepare(benchmarks, machine_indices);

    std::vector<Metric> selected = metricsFor(selection);
    stats::Matrix out(benchmarks.size(),
                      machine_indices.size() * selected.size());
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        std::size_t col = 0;
        for (std::size_t mi : machine_indices) {
            MetricVector mv = metrics(benchmarks[b], mi);
            for (Metric metric : selected)
                out(b, col++) = mv.get(metric);
        }
    }
    return out;
}

std::vector<std::string>
Characterizer::featureNames(MetricSelection selection) const
{
    std::vector<std::size_t> all(machines_.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = i;
    return featureNames(selection, all);
}

std::vector<std::string>
Characterizer::featureNames(
    MetricSelection selection,
    const std::vector<std::size_t> &machine_indices) const
{
    std::vector<Metric> selected = metricsFor(selection);
    std::vector<std::string> names;
    names.reserve(machine_indices.size() * selected.size());
    for (std::size_t mi : machine_indices) {
        if (mi >= machines_.size())
            throw std::out_of_range("featureNames: machine index");
        for (Metric metric : selected) {
            names.push_back(machines_[mi].short_name + "." +
                            metricName(metric));
        }
    }
    return names;
}

} // namespace core
} // namespace speclens
