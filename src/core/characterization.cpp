/**
 * @file
 * Measurement campaign implementation.
 */

#include "characterization.h"

#include <set>
#include <stdexcept>
#include <utility>

#include "core/parallel.h"
#include "obs/metrics.h"

namespace speclens {
namespace core {

uarch::SimulationConfig
CharacterizationConfig::simulationConfig() const
{
    uarch::SimulationConfig sim;
    sim.instructions = instructions;
    sim.warmup = warmup;
    sim.seed_salt = seed_salt;
    return sim;
}

void
CharacterizationConfig::hashInto(stats::Fingerprinter &fp) const
{
    // Delegate to the canonical window hash so campaign entries and
    // raw storedSimulate() entries with the same window share a
    // fingerprint (and therefore a store entry).
    simulationConfig().hashInto(fp);
}

StoreKey
makeStoreKey(const trace::WorkloadProfile &profile,
             const uarch::MachineConfig &machine,
             const CharacterizationConfig &config)
{
    return makeStoreKey(profile, machine, config.simulationConfig());
}

Characterizer::Characterizer(std::vector<uarch::MachineConfig> machines,
                             CharacterizationConfig config)
    : machines_(std::move(machines)), config_(config)
{
    if (machines_.empty())
        throw std::invalid_argument("Characterizer: no machines");
#ifdef SPECLENS_VALIDATE
    // Startup assertions (configure with -DSPECLENS_VALIDATE=ON): a
    // malformed machine model corrupts every measurement silently, so
    // fail fast before any simulation runs.
    for (const uarch::MachineConfig &machine : machines_)
        uarch::validateMachineConfig(machine);
#endif
}

uarch::SimulationResult
Characterizer::runSimulation(const suites::BenchmarkInfo &benchmark,
                             std::size_t machine_index) const
{
    static obs::Timing &simulate_time =
        obs::Registry::global().timing("core.characterize.simulate");
    obs::Span span(simulate_time);
    return uarch::simulate(benchmark.profile, machines_[machine_index],
                           config_.simulationConfig());
}

void
Characterizer::attachStore(std::shared_ptr<CampaignStore> store)
{
    store_ = std::move(store);
}

StoreKey
Characterizer::storeKey(const suites::BenchmarkInfo &benchmark,
                        std::size_t machine_index) const
{
    if (machine_index >= machines_.size())
        throw std::out_of_range("Characterizer::storeKey: machine index");
    return makeStoreKey(benchmark.profile, machines_[machine_index],
                        config_);
}

uarch::SimulationResult
Characterizer::obtainResult(const suites::BenchmarkInfo &benchmark,
                            std::size_t machine_index)
{
    static obs::Counter &simulations =
        obs::Registry::global().counter("core.characterize.simulations");
    if (store_) {
        StoreKey key = storeKey(benchmark, machine_index);
        uarch::SimulationResult loaded;
        if (store_->load(key, loaded) == StoreStatus::Hit)
            return loaded;
        // Miss, or a defensive rejection (corrupt / stale / mismatched
        // entry): recompute and overwrite with a fresh entry.
        uarch::SimulationResult result =
            runSimulation(benchmark, machine_index);
        simulations_run_.fetch_add(1, std::memory_order_relaxed);
        simulations.add();
        store_->recordComputed();
        store_->save(key, result);
        return result;
    }
    uarch::SimulationResult result =
        runSimulation(benchmark, machine_index);
    simulations_run_.fetch_add(1, std::memory_order_relaxed);
    simulations.add();
    return result;
}

void
Characterizer::prepare(
    const std::vector<suites::BenchmarkInfo> &benchmarks,
    const std::vector<std::size_t> &machine_indices, std::size_t jobs)
{
    // Collect the distinct pairs not yet memoised.  Holding the lock
    // here is cheap: only map lookups, no simulation.
    std::vector<std::pair<const suites::BenchmarkInfo *, std::size_t>>
        missing;
    {
        std::set<CacheKey> scheduled;
        std::lock_guard<std::mutex> lock(cache_mutex_);
        for (const suites::BenchmarkInfo &benchmark : benchmarks) {
            for (std::size_t mi : machine_indices) {
                if (mi >= machines_.size())
                    throw std::out_of_range(
                        "Characterizer::prepare: machine index");
                CacheKey key{benchmark.profile.name, mi};
                if (cache_.find(key) != cache_.end())
                    continue;
                if (!scheduled.insert(std::move(key)).second)
                    continue;
                missing.emplace_back(&benchmark, mi);
            }
        }
    }
    if (missing.empty())
        return;

#ifdef SPECLENS_VALIDATE
    // Validate each profile once before fanning the campaign out, so a
    // broken model aborts with a field name instead of producing a
    // plausible-looking feature matrix.
    for (const auto &[benchmark, mi] : missing) {
        (void)mi;
        benchmark->profile.validate();
    }
#endif

    parallelFor(missing.size(), jobs == 0 ? config_.jobs : jobs,
                [&](std::size_t i) {
                    const auto &[benchmark, mi] = missing[i];
                    uarch::SimulationResult result =
                        obtainResult(*benchmark, mi);
                    std::lock_guard<std::mutex> lock(cache_mutex_);
                    cache_.emplace(
                        CacheKey{benchmark->profile.name, mi},
                        std::move(result));
                });
}

void
Characterizer::prepare(
    const std::vector<suites::BenchmarkInfo> &benchmarks, std::size_t jobs)
{
    std::vector<std::size_t> all(machines_.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = i;
    prepare(benchmarks, all, jobs);
}

const uarch::SimulationResult &
Characterizer::simulation(const suites::BenchmarkInfo &benchmark,
                          std::size_t machine_index)
{
    if (machine_index >= machines_.size())
        throw std::out_of_range("Characterizer: machine index");

    static obs::Counter &memo_hits =
        obs::Registry::global().counter("core.characterize.memo_hits");

    CacheKey key{benchmark.profile.name, machine_index};
    {
        std::lock_guard<std::mutex> lock(cache_mutex_);
        auto it = cache_.find(key);
        if (it != cache_.end()) {
            memo_hits.add();
            return it->second;
        }
    }

    // Obtain outside the lock so concurrent misses on different
    // pairs proceed in parallel.  Two threads racing on the same pair
    // duplicate the (deterministic, identical) work; emplace keeps the
    // first insert, so the returned reference is stable either way.
    uarch::SimulationResult result =
        obtainResult(benchmark, machine_index);
    std::lock_guard<std::mutex> lock(cache_mutex_);
    return cache_.emplace(std::move(key), std::move(result))
        .first->second;
}

MetricVector
Characterizer::metrics(const suites::BenchmarkInfo &benchmark,
                       std::size_t machine_index)
{
    return extractMetrics(simulation(benchmark, machine_index));
}

stats::Matrix
Characterizer::featureMatrix(
    const std::vector<suites::BenchmarkInfo> &benchmarks,
    MetricSelection selection)
{
    std::vector<std::size_t> all(machines_.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = i;
    return featureMatrix(benchmarks, selection, all);
}

stats::Matrix
Characterizer::featureMatrix(
    const std::vector<suites::BenchmarkInfo> &benchmarks,
    MetricSelection selection,
    const std::vector<std::size_t> &machine_indices)
{
    prepare(benchmarks, machine_indices);

    std::vector<Metric> selected = metricsFor(selection);
    stats::Matrix out(benchmarks.size(),
                      machine_indices.size() * selected.size());
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        std::size_t col = 0;
        for (std::size_t mi : machine_indices) {
            MetricVector mv = metrics(benchmarks[b], mi);
            for (Metric metric : selected)
                out(b, col++) = mv.get(metric);
        }
    }
    return out;
}

std::vector<std::string>
Characterizer::featureNames(MetricSelection selection) const
{
    std::vector<std::size_t> all(machines_.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = i;
    return featureNames(selection, all);
}

std::vector<std::string>
Characterizer::featureNames(
    MetricSelection selection,
    const std::vector<std::size_t> &machine_indices) const
{
    std::vector<Metric> selected = metricsFor(selection);
    std::vector<std::string> names;
    names.reserve(machine_indices.size() * selected.size());
    for (std::size_t mi : machine_indices) {
        if (mi >= machines_.size())
            throw std::out_of_range("featureNames: machine index");
        for (Metric metric : selected) {
            names.push_back(machines_[mi].short_name + "." +
                            metricName(metric));
        }
    }
    return names;
}

} // namespace core
} // namespace speclens
