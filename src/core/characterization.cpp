/**
 * @file
 * Measurement campaign implementation.
 */

#include "characterization.h"

#include <stdexcept>

namespace speclens {
namespace core {

Characterizer::Characterizer(std::vector<uarch::MachineConfig> machines,
                             CharacterizationConfig config)
    : machines_(std::move(machines)), config_(config)
{
    if (machines_.empty())
        throw std::invalid_argument("Characterizer: no machines");
}

const uarch::SimulationResult &
Characterizer::simulation(const suites::BenchmarkInfo &benchmark,
                          std::size_t machine_index)
{
    if (machine_index >= machines_.size())
        throw std::out_of_range("Characterizer: machine index");

    auto key = std::make_pair(benchmark.profile.name, machine_index);
    auto it = cache_.find(key);
    if (it != cache_.end())
        return it->second;

    uarch::SimulationConfig sim;
    sim.instructions = config_.instructions;
    sim.warmup = config_.warmup;
    sim.seed_salt = config_.seed_salt;
    uarch::SimulationResult result =
        uarch::simulate(benchmark.profile, machines_[machine_index], sim);
    return cache_.emplace(key, std::move(result)).first->second;
}

MetricVector
Characterizer::metrics(const suites::BenchmarkInfo &benchmark,
                       std::size_t machine_index)
{
    return extractMetrics(simulation(benchmark, machine_index));
}

stats::Matrix
Characterizer::featureMatrix(
    const std::vector<suites::BenchmarkInfo> &benchmarks,
    MetricSelection selection)
{
    std::vector<std::size_t> all(machines_.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = i;
    return featureMatrix(benchmarks, selection, all);
}

stats::Matrix
Characterizer::featureMatrix(
    const std::vector<suites::BenchmarkInfo> &benchmarks,
    MetricSelection selection,
    const std::vector<std::size_t> &machine_indices)
{
    std::vector<Metric> selected = metricsFor(selection);
    stats::Matrix out(benchmarks.size(),
                      machine_indices.size() * selected.size());
    for (std::size_t b = 0; b < benchmarks.size(); ++b) {
        std::size_t col = 0;
        for (std::size_t mi : machine_indices) {
            MetricVector mv = metrics(benchmarks[b], mi);
            for (Metric metric : selected)
                out(b, col++) = mv.get(metric);
        }
    }
    return out;
}

std::vector<std::string>
Characterizer::featureNames(MetricSelection selection) const
{
    std::vector<std::size_t> all(machines_.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = i;
    return featureNames(selection, all);
}

std::vector<std::string>
Characterizer::featureNames(
    MetricSelection selection,
    const std::vector<std::size_t> &machine_indices) const
{
    std::vector<Metric> selected = metricsFor(selection);
    std::vector<std::string> names;
    names.reserve(machine_indices.size() * selected.size());
    for (std::size_t mi : machine_indices) {
        if (mi >= machines_.size())
            throw std::out_of_range("featureNames: machine index");
        for (Metric metric : selected) {
            names.push_back(machines_[mi].short_name + "." +
                            metricName(metric));
        }
    }
    return names;
}

} // namespace core
} // namespace speclens
