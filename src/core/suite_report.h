/**
 * @file
 * One-call markdown report over a benchmark suite: the paper's whole
 * analysis pipeline condensed into a document a performance team can
 * circulate.
 *
 * The report contains: the characterization table (Skylake reference),
 * the similarity dendrogram, the representative subset with its
 * score-prediction accuracy, and the most/least distinct benchmarks.
 */

#ifndef SPECLENS_CORE_SUITE_REPORT_H
#define SPECLENS_CORE_SUITE_REPORT_H

#include <ostream>
#include <string>
#include <vector>

#include "core/characterization.h"
#include "suites/benchmark_info.h"
#include "suites/score_database.h"

namespace speclens {
namespace core {

/** Report options. */
struct SuiteReportOptions
{
    /** Representative-subset size (the paper's 3). */
    std::size_t subset_size = 3;

    /**
     * Category used for score-database validation; Category::Other
     * skips the validation section (no published scores exist).
     */
    suites::Category validation_category = suites::Category::Other;

    /** Title printed at the top. */
    std::string title = "SpecLens suite report";
};

/**
 * Write a markdown report for @p suite to @p out.
 *
 * @param characterizer Measurement campaign (results are memoised, so
 *        sharing one across reports is cheap).
 * @param suite At least two benchmarks.
 * @param options See SuiteReportOptions.
 */
void writeSuiteReport(std::ostream &out, Characterizer &characterizer,
                      const std::vector<suites::BenchmarkInfo> &suite,
                      const SuiteReportOptions &options = {});

} // namespace core
} // namespace speclens

#endif // SPECLENS_CORE_SUITE_REPORT_H
