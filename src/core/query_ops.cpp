/**
 * @file
 * Shared query-operation implementation.
 *
 * Formatting here must stay byte-identical to what the pre-refactor
 * CLI printed: the serve-smoke acceptance check `cmp`s daemon output
 * against batch CLI output.
 */

#include "query_ops.h"

#include <cstdio>
#include <utility>

#include "core/metrics.h"
#include "core/report.h"
#include "core/sensitivity.h"
#include "core/similarity.h"
#include "core/subsetting.h"
#include "core/validation.h"
#include "suites/score_database.h"
#include "suites/spec2017.h"

namespace speclens {
namespace core {

namespace {

/** snprintf into a std::string (formats match the old printf calls). */
template <typename... Args>
std::string
format(const char *fmt, Args... args)
{
    char buffer[256];
    std::snprintf(buffer, sizeof(buffer), fmt, args...);
    return std::string(buffer);
}

/** The sub-suite and Category enum for a `subset` category name. */
bool
resolveCategory(const std::string &which,
                std::vector<suites::BenchmarkInfo> &suite,
                suites::Category &category)
{
    if (which == "speed-int") {
        suite = suites::spec2017SpeedInt();
        category = suites::Category::SpeedInt;
    } else if (which == "rate-int") {
        suite = suites::spec2017RateInt();
        category = suites::Category::RateInt;
    } else if (which == "speed-fp") {
        suite = suites::spec2017SpeedFp();
        category = suites::Category::SpeedFp;
    } else if (which == "rate-fp") {
        suite = suites::spec2017RateFp();
        category = suites::Category::RateFp;
    } else {
        return false;
    }
    return true;
}

bool
resolveMetric(const std::string &which, Metric &metric)
{
    if (which == "branch")
        metric = Metric::BranchMpki;
    else if (which == "l1d")
        metric = Metric::L1dMpki;
    else if (which == "dtlb")
        metric = Metric::DtlbMpmi;
    else
        return false;
    return true;
}

} // namespace

QueryOutcome
queryError(std::string message)
{
    QueryOutcome outcome;
    outcome.ok = false;
    outcome.error = std::move(message);
    return outcome;
}

bool
isSubsetCategory(const std::string &name)
{
    std::vector<suites::BenchmarkInfo> suite;
    suites::Category category;
    return resolveCategory(name, suite, category);
}

bool
isSensitivityMetric(const std::string &name)
{
    Metric metric;
    return resolveMetric(name, metric);
}

QueryOutcome
runCharacterizeQuery(ServiceContext &context,
                     const std::vector<std::string> &benchmarks)
{
    if (benchmarks.empty())
        return queryError("no benchmarks given");
    std::vector<suites::BenchmarkInfo> selected;
    for (const std::string &name : benchmarks) {
        const suites::BenchmarkInfo *benchmark =
            context.findBenchmark(name);
        if (!benchmark)
            return queryError("unknown benchmark: " + name);
        selected.push_back(*benchmark);
    }

    Characterizer &characterizer =
        context.characterizerFor(context.profilingMachines());
    // Fan all (benchmark, machine) simulations out before rendering.
    characterizer.prepare(selected);

    QueryOutcome outcome;
    for (const suites::BenchmarkInfo &benchmark : selected) {
        outcome.output +=
            "\n" + benchmark.name + " (" +
            suites::suiteName(benchmark.suite) + ", " +
            suites::domainName(benchmark.domain) + ")\n";
        TextTable table({"Machine", "CPI", "L1D MPKI", "L1I MPKI",
                         "L3 MPKI", "Br MPKI", "DTLB MPMI",
                         "Power (W)"});
        for (std::size_t m = 0; m < characterizer.machines().size();
             ++m) {
            const auto &sim = characterizer.simulation(benchmark, m);
            MetricVector mv = extractMetrics(sim);
            table.addRow(
                {characterizer.machines()[m].short_name,
                 TextTable::num(sim.cpi()),
                 TextTable::num(mv.get(Metric::L1dMpki), 1),
                 TextTable::num(mv.get(Metric::L1iMpki), 1),
                 TextTable::num(mv.get(Metric::L3Mpki), 1),
                 TextTable::num(mv.get(Metric::BranchMpki), 1),
                 TextTable::num(mv.get(Metric::DtlbMpmi), 0),
                 TextTable::num(sim.power.total(), 1)});
        }
        outcome.output += table.render();
    }
    return outcome;
}

QueryOutcome
runMemoryQuery(ServiceContext &context,
               const std::vector<std::string> &benchmarks)
{
    if (benchmarks.empty())
        return queryError("no benchmarks given");
    std::vector<suites::BenchmarkInfo> selected;
    for (const std::string &name : benchmarks) {
        const suites::BenchmarkInfo *benchmark =
            context.findBenchmark(name);
        if (!benchmark)
            return queryError("unknown benchmark: " + name);
        selected.push_back(*benchmark);
    }

    Characterizer &characterizer =
        context.characterizerFor(context.memoryMachines());
    characterizer.prepare(selected);

    QueryOutcome outcome;
    for (const suites::BenchmarkInfo &benchmark : selected) {
        outcome.output +=
            "\n" + benchmark.name + " (" +
            suites::suiteName(benchmark.suite) + ", " +
            suites::domainName(benchmark.domain) + ") memory-centric\n";
        TextTable table({"Machine", "Pf cov", "Pf acc", "Pf time",
                         "WayPred", "RowBuf", "BW util", "L2D MPKI",
                         "L3 MPKI"});
        for (std::size_t m = 0; m < characterizer.machines().size();
             ++m) {
            const auto &sim = characterizer.simulation(benchmark, m);
            MetricVector mv = extractMetrics(sim);
            table.addRow(
                {characterizer.machines()[m].short_name,
                 TextTable::num(mv.get(Metric::PrefetchCoverage), 3),
                 TextTable::num(mv.get(Metric::PrefetchAccuracy), 3),
                 TextTable::num(mv.get(Metric::PrefetchTimeliness), 3),
                 TextTable::num(mv.get(Metric::WayPredAccuracy), 3),
                 TextTable::num(mv.get(Metric::RowBufferHitRate), 3),
                 TextTable::num(mv.get(Metric::DramBwUtil), 3),
                 TextTable::num(mv.get(Metric::L2dMpki), 1),
                 TextTable::num(mv.get(Metric::L3Mpki), 1)});
        }
        outcome.output += table.render();
    }
    return outcome;
}

QueryOutcome
runSubsetQuery(ServiceContext &context, const std::string &category_name,
               std::size_t k)
{
    std::vector<suites::BenchmarkInfo> suite;
    suites::Category category;
    if (!resolveCategory(category_name, suite, category))
        return queryError("unknown category: " + category_name);
    if (k < 1 || k > suite.size())
        return queryError(
            format("k must be in [1, %zu]", suite.size()));

    Characterizer &characterizer =
        context.characterizerFor(context.profilingMachines());
    SimilarityResult sim =
        analyzeSimilarity(characterizer.featureMatrix(suite),
                          suites::benchmarkNames(suite));

    QueryOutcome outcome;
    outcome.output += sim.renderDendrogram();

    SubsetResult subset = selectSubset(
        sim, k, RepresentativeRule::ShortestLinkage, suite);
    outcome.output +=
        format("\n%zu-benchmark subset (%.1fx less simulation):\n", k,
               subset.simulation_time_reduction);
    for (const std::string &name : subset.representatives)
        outcome.output += "  " + name + "\n";

    suites::ScoreDatabase db;
    ValidationResult validation =
        validateSubset(suite, subset.representatives, category, db);
    outcome.output += format(
        "score-prediction accuracy: %.1f%% (avg error %.1f%%, "
        "max %.1f%%)\n",
        100.0 - validation.avg_error_pct, validation.avg_error_pct,
        validation.max_error_pct);
    return outcome;
}

QueryOutcome
runSensitivityQuery(ServiceContext &context, const std::string &metric_name)
{
    Metric metric;
    if (!resolveMetric(metric_name, metric))
        return queryError("unknown metric: " + metric_name);

    Characterizer &characterizer =
        context.characterizerFor(context.sensitivityMachines());
    SensitivityReport report =
        classifySensitivity(characterizer, context.cpu2017(), metric);

    QueryOutcome outcome;
    for (SensitivityClass cls :
         {SensitivityClass::High, SensitivityClass::Medium,
          SensitivityClass::Low}) {
        outcome.output += sensitivityClassName(cls) + ":\n";
        for (const std::string &name : report.names(cls))
            outcome.output += "  " + name + "\n";
    }
    return outcome;
}

} // namespace core
} // namespace speclens
