/**
 * @file
 * Suite report implementation.
 */

#include "suite_report.h"

#include <iomanip>
#include <sstream>
#include <stdexcept>

#include "core/similarity.h"
#include "core/subsetting.h"
#include "core/validation.h"

namespace speclens {
namespace core {

namespace {

void
markdownRow(std::ostream &out, const std::vector<std::string> &cells)
{
    out << "|";
    for (const std::string &cell : cells)
        out << " " << cell << " |";
    out << "\n";
}

std::string
num(double value, int precision = 2)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

} // namespace

void
writeSuiteReport(std::ostream &out, Characterizer &characterizer,
                 const std::vector<suites::BenchmarkInfo> &suite,
                 const SuiteReportOptions &options)
{
    if (suite.size() < 2)
        throw std::invalid_argument("writeSuiteReport: need >= 2 "
                                    "benchmarks");
    if (options.subset_size < 1 || options.subset_size > suite.size())
        throw std::invalid_argument("writeSuiteReport: subset size");

    out << "# " << options.title << "\n\n";
    out << suite.size() << " benchmarks measured on "
        << characterizer.machines().size()
        << " machine models ("
        << characterizer.featureNames().size()
        << " metrics per benchmark).\n\n";

    // ----- Characterization (reference machine = first) -----
    out << "## Characterization ("
        << characterizer.machines().front().name << ")\n\n";
    markdownRow(out, {"Benchmark", "CPI", "L1D MPKI", "L1I MPKI",
                      "L3 MPKI", "Branch MPKI", "D-TLB MPMI"});
    markdownRow(out, {"---", "---", "---", "---", "---", "---", "---"});
    for (const suites::BenchmarkInfo &b : suite) {
        const auto &sim = characterizer.simulation(b, 0);
        MetricVector mv = extractMetrics(sim);
        markdownRow(out,
                    {b.name, num(sim.cpi()),
                     num(mv.get(Metric::L1dMpki), 1),
                     num(mv.get(Metric::L1iMpki), 1),
                     num(mv.get(Metric::L3Mpki), 1),
                     num(mv.get(Metric::BranchMpki), 1),
                     num(mv.get(Metric::DtlbMpmi), 0)});
    }

    // ----- Similarity -----
    SimilarityResult sim = analyzeSimilarity(
        characterizer.featureMatrix(suite),
        suites::benchmarkNames(suite));
    out << "\n## Similarity\n\n";
    out << "PCA retained " << sim.pca.retained
        << " components covering "
        << num(100.0 * sim.pca.variance_covered, 1)
        << "% of variance (Kaiser criterion).\n\n";
    out << "Most distinct benchmark: **"
        << sim.labels[sim.mostDistinct()] << "**\n\n";
    out << "```\n" << sim.renderDendrogram() << "```\n";

    // ----- Subset -----
    SubsetResult subset = selectSubset(
        sim, options.subset_size, RepresentativeRule::ShortestLinkage,
        suite);
    out << "\n## Representative subset (" << options.subset_size
        << " of " << suite.size() << ")\n\n";
    for (std::size_t c = 0; c < subset.clusters.size(); ++c) {
        out << "* **" << subset.representatives[c] << "** represents:";
        for (const std::string &name : subset.clusters[c])
            out << " " << name;
        out << "\n";
    }
    out << "\nSimulation-time reduction: "
        << num(subset.simulation_time_reduction, 1) << "x\n";

    // ----- Validation -----
    if (options.validation_category != suites::Category::Other) {
        suites::ScoreDatabase db;
        ValidationResult validation =
            validateSubset(suite, subset.representatives,
                           options.validation_category, db);
        out << "\n## Score-prediction accuracy\n\n";
        markdownRow(out, {"System", "Full score", "Subset score",
                          "Error (%)"});
        markdownRow(out, {"---", "---", "---", "---"});
        for (const SystemValidation &v : validation.per_system)
            markdownRow(out, {v.system, num(v.full_score),
                              num(v.subset_score),
                              num(v.error_pct, 1)});
        out << "\nAverage error " << num(validation.avg_error_pct, 1)
            << "% — accuracy "
            << num(100.0 - validation.avg_error_pct, 1) << "%.\n";
    }
}

} // namespace core
} // namespace speclens
