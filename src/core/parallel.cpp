/**
 * @file
 * Parallelism utilities implementation.
 */

#include "parallel.h"

#include <algorithm>
#include <atomic>

namespace speclens {
namespace core {

std::size_t
defaultJobCount()
{
    unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? n : 1;
}

std::size_t
resolveJobCount(std::size_t jobs)
{
    return jobs == 0 ? defaultJobCount() : jobs;
}

void
parallelFor(std::size_t count, std::size_t jobs,
            const std::function<void(std::size_t)> &body)
{
    std::size_t threads = std::min(resolveJobCount(jobs), count);
    if (threads <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::exception_ptr first_error;

    auto work = [&]() {
        for (;;) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count || failed.load(std::memory_order_relaxed))
                return;
            try {
                body(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
            }
        }
    };

    std::vector<std::thread> helpers;
    helpers.reserve(threads - 1);
    for (std::size_t t = 0; t + 1 < threads; ++t)
        helpers.emplace_back(work);
    work(); // The caller is worker zero.
    for (std::thread &helper : helpers)
        helper.join();

    if (first_error)
        std::rethrow_exception(first_error);
}

ThreadPool::ThreadPool(std::size_t workers)
{
    std::size_t n = resolveJobCount(workers);
    workers_.reserve(n);
    for (std::size_t t = 0; t < n; ++t)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        idle_.wait(lock, [this]() {
            return queue_.empty() && running_ == 0;
        });
        stopping_ = true;
    }
    task_ready_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    task_ready_.notify_one();
}

void
ThreadPool::wait()
{
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        idle_.wait(lock, [this]() {
            return queue_.empty() && running_ == 0;
        });
        error = first_error_;
        first_error_ = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            task_ready_.wait(lock, [this]() {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
            ++running_;
        }
        try {
            task();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!first_error_)
                first_error_ = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --running_;
            if (queue_.empty() && running_ == 0)
                idle_.notify_all();
        }
    }
}

} // namespace core
} // namespace speclens
