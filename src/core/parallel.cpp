/**
 * @file
 * Parallelism utilities implementation.
 */

#include "parallel.h"

#include <algorithm>
#include <atomic>

#include "obs/metrics.h"

namespace speclens {
namespace core {

namespace {

/**
 * Instruments for the fan-out engine, resolved once per process.
 * Wrapped in a struct so one function-local static covers them all.
 */
struct ParallelInstruments
{
    obs::Counter &batches;
    obs::Counter &tasks;
    obs::Timing &task_time;
    obs::Timing &batch_time;
    obs::Gauge &utilization;

    static const ParallelInstruments &
    get()
    {
        static ParallelInstruments instruments{
            obs::Registry::global().counter("core.parallel.batches"),
            obs::Registry::global().counter("core.parallel.tasks"),
            obs::Registry::global().timing("core.parallel.task"),
            obs::Registry::global().timing("core.parallel.batch"),
            obs::Registry::global().gauge("core.parallel.utilization"),
        };
        return instruments;
    }
};

} // namespace

std::size_t
defaultJobCount()
{
    unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? n : 1;
}

std::size_t
resolveJobCount(std::size_t jobs)
{
    return jobs == 0 ? defaultJobCount() : jobs;
}

void
parallelFor(std::size_t count, std::size_t jobs,
            const std::function<void(std::size_t)> &body)
{
    std::size_t threads = std::min(resolveJobCount(jobs), count);
    const ParallelInstruments &instruments = ParallelInstruments::get();
    instruments.batches.add();
    instruments.tasks.add(count);
    std::uint64_t batch_start = obs::kMetricsEnabled ? obs::nowNs() : 0;
    std::atomic<std::uint64_t> busy_ns{0};

    auto timedBody = [&](std::size_t i) {
        if constexpr (obs::kMetricsEnabled) {
            std::uint64_t t0 = obs::nowNs();
            body(i);
            std::uint64_t elapsed = obs::nowNs() - t0;
            instruments.task_time.record(elapsed);
            busy_ns.fetch_add(elapsed, std::memory_order_relaxed);
        } else {
            body(i);
        }
    };

    auto finishBatch = [&]() {
        if constexpr (obs::kMetricsEnabled) {
            std::uint64_t wall = obs::nowNs() - batch_start;
            instruments.batch_time.record(wall);
            // Fraction of worker wall-time spent inside task bodies —
            // 1.0 means no claim/join overhead and no idle tail.
            if (wall > 0 && threads > 0)
                instruments.utilization.set(
                    static_cast<double>(
                        busy_ns.load(std::memory_order_relaxed)) /
                    (static_cast<double>(wall) *
                     static_cast<double>(threads)));
        }
    };

    if (threads <= 1) {
        for (std::size_t i = 0; i < count; ++i)
            timedBody(i);
        finishBatch();
        return;
    }

    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::exception_ptr first_error;

    auto work = [&]() {
        for (;;) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count || failed.load(std::memory_order_relaxed))
                return;
            try {
                timedBody(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(error_mutex);
                if (!first_error)
                    first_error = std::current_exception();
                failed.store(true, std::memory_order_relaxed);
            }
        }
    };

    std::vector<std::thread> helpers;
    helpers.reserve(threads - 1);
    for (std::size_t t = 0; t + 1 < threads; ++t)
        helpers.emplace_back(work);
    work(); // The caller is worker zero.
    for (std::thread &helper : helpers)
        helper.join();
    finishBatch();

    if (first_error)
        std::rethrow_exception(first_error);
}

ThreadPool::ThreadPool(std::size_t workers)
{
    std::size_t n = resolveJobCount(workers);
    workers_.reserve(n);
    for (std::size_t t = 0; t < n; ++t)
        workers_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        idle_.wait(lock, [this]() {
            return queue_.empty() && running_ == 0;
        });
        stopping_ = true;
    }
    task_ready_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    QueuedTask item;
    item.fn = std::move(task);
    if constexpr (obs::kMetricsEnabled)
        item.enqueued_ns = obs::nowNs();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(item));
    }
    task_ready_.notify_one();
}

void
ThreadPool::wait()
{
    std::exception_ptr error;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        idle_.wait(lock, [this]() {
            return queue_.empty() && running_ == 0;
        });
        error = first_error_;
        first_error_ = nullptr;
    }
    if (error)
        std::rethrow_exception(error);
}

void
ThreadPool::workerLoop()
{
    static obs::Timing &queue_wait =
        obs::Registry::global().timing("core.parallel.queue_wait");
    static obs::Counter &pool_tasks =
        obs::Registry::global().counter("core.parallel.pool_tasks");
    for (;;) {
        QueuedTask task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            task_ready_.wait(lock, [this]() {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
            ++running_;
        }
        if constexpr (obs::kMetricsEnabled) {
            queue_wait.record(obs::nowNs() - task.enqueued_ns);
            pool_tasks.add();
        }
        try {
            task.fn();
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!first_error_)
                first_error_ = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --running_;
            if (queue_.empty() && running_ == 0)
                idle_.notify_all();
        }
    }
}

} // namespace core
} // namespace speclens
