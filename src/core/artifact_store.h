/**
 * @file
 * Persistent campaign artifact store: content-addressed, versioned
 * on-disk cache of simulation results.
 *
 * The paper's methodology is one expensive measurement campaign whose
 * counter data feeds many downstream analyses, long after collection.
 * SpecLens mirrors that: a (benchmark, machine) measurement is
 * deterministic, so once computed it can be persisted and reused by
 * every bench binary, CLI command and test — the in-process memo cache
 * of the Characterizer extended across process boundaries.
 *
 * Entries are *content addressed*: the file name is the hex of a
 * fingerprint over everything that determines the result — the engine
 * version, the simulation window (instructions, warm-up, seed salt),
 * the full workload model and the full machine model (see
 * stats/fingerprint.h).  Recalibrating a profile, changing a cache
 * geometry or bumping kStoreEngineVersion therefore changes the
 * address, and stale entries simply stop being found.
 *
 * Entries are loaded defensively.  Every file carries a magic, the
 * engine version, its own fingerprint, a payload checksum and a
 * length-checked payload; truncated, corrupt, version-mismatched or
 * fingerprint-mismatched entries are counted, reported and recomputed
 * — never trusted.  A load can always fail soft: the caller falls back
 * to simulation, exactly as if the entry had never existed.
 *
 * On-disk layout of one entry (`<16-hex-fingerprint>.slart`, all
 * integers little-endian):
 *
 *   offset  size  field
 *        0     8  magic "SLART001" (format version in the magic)
 *        8     8  engine version (kStoreEngineVersion)
 *       16     8  fingerprint (must equal the file name)
 *       24     8  payload size in bytes
 *       32     8  FNV-1a checksum of the payload bytes
 *       40     -  payload: benchmark name, machine name, window
 *                 (instructions, warmup, seed salt, transform and
 *                 prewarm flags), an entry-kind marker, then the
 *                 result — one SimulationResult (counters as u64s,
 *                 CPI stack and power as IEEE-754 bit patterns) for a
 *                 pair entry, or phase count + per-phase results +
 *                 combined counters + combined CPI for a phased entry
 *
 * Thread safety: load/save/counters may be called concurrently (the
 * Characterizer's workers do).  Distinct keys touch distinct files;
 * concurrent saves of the same key write identical bytes through
 * unique temp files and an atomic rename, so the last rename wins and
 * every reader sees a complete entry.
 */

#ifndef SPECLENS_CORE_ARTIFACT_STORE_H
#define SPECLENS_CORE_ARTIFACT_STORE_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "uarch/simulation.h"

namespace speclens {
namespace core {

/**
 * Version of the simulation engine baked into every fingerprint and
 * entry header.  Bump it whenever a change to the trace generator,
 * the cache/TLB/predictor models, the CPI stack or the power model
 * alters what simulate() produces for an unchanged (profile, machine,
 * window) triple — every persisted entry then invalidates at once.
 */
constexpr std::uint64_t kStoreEngineVersion = 1;

/** File extension of store entries. */
constexpr const char *kStoreEntrySuffix = ".slart";

/**
 * Address and descriptive metadata of one store entry.
 *
 * The fingerprint alone addresses the entry; the names and window are
 * persisted alongside the payload so `speclens campaign info` and the
 * SL016 store-integrity lint rule can describe an entry (and re-derive
 * its expected fingerprint from the shipped models) without having to
 * reverse the hash.
 */
struct StoreKey
{
    std::uint64_t fingerprint = 0;

    std::string benchmark; //!< Workload profile name.
    std::string machine;   //!< Machine full name.

    // Simulation window.
    std::uint64_t instructions = 0;
    std::uint64_t warmup = 0;
    std::uint64_t seed_salt = 0;
    bool apply_machine_transform = true;
    bool prewarm = true;
};

/**
 * Store address of one raw simulate() measurement.  The engine
 * version, the full window, the full workload model and the full
 * machine model all feed the fingerprint, so changing any of them
 * re-addresses the entry and stale data stops being found.
 */
StoreKey makeStoreKey(const trace::WorkloadProfile &profile,
                      const uarch::MachineConfig &machine,
                      const uarch::SimulationConfig &config);

/**
 * Store address of one simulatePhased() measurement.  Domain-separated
 * from pair entries (different top-level tag), so a phased workload
 * never collides with a plain profile of the same name.
 */
StoreKey makeStoreKey(const trace::PhasedWorkload &workload,
                      const uarch::MachineConfig &machine,
                      const uarch::SimulationConfig &config);

/** Outcome of one load. */
enum class StoreStatus {
    Hit,                 //!< Entry present, consistent, deserialized.
    Miss,                //!< No entry file.
    Corrupt,             //!< Truncated / bad magic / checksum mismatch.
    StaleVersion,        //!< Written by a different engine version.
    FingerprintMismatch, //!< Header disagrees with the requested key.
};

/** Human-readable status name ("hit", "corrupt", ...). */
std::string storeStatusName(StoreStatus status);

/** Lifetime I/O counters of one store handle. */
struct StoreCounters
{
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t corrupt = 0;
    std::size_t stale_version = 0;
    std::size_t fingerprint_mismatch = 0;
    std::size_t saves = 0;

    /**
     * Simulations actually executed against this store (every load
     * that did not end in a Hit and was recomputed).  Zero on a warm
     * run — the acceptance check behind `--store` reuse.
     */
    std::size_t computed = 0;

    /**
     * Orphaned temp files (`*.slart.tmp*`) removed when the store was
     * opened.  A writer that died between the temp write and the
     * atomic rename leaves one behind; it never shadows an entry (the
     * suffix excludes it from lookup and scan) but would otherwise
     * accumulate silently.  Counted into the `rejected=` figure of the
     * session summary so interrupted runs are visible.
     */
    std::size_t orphaned_temp = 0;
};

/** Verified description of one on-disk entry (see CampaignStore::scan). */
struct StoreEntryInfo
{
    std::string filename;  //!< Entry file name within the store.
    std::uint64_t file_bytes = 0;

    /**
     * Entry condition: Hit when fully consistent, otherwise the
     * defect class (Corrupt / StaleVersion / FingerprintMismatch —
     * the latter meaning the header disagrees with the file name).
     */
    StoreStatus status = StoreStatus::Hit;

    /** Human-readable defect description; empty when status == Hit. */
    std::string detail;

    // Header fields (valid whenever the header was readable).
    std::uint64_t engine_version = 0;
    std::uint64_t fingerprint = 0;

    // Metadata (valid when status is Hit or StaleVersion).
    std::string benchmark;
    std::string machine;
    std::uint64_t instructions = 0;
    std::uint64_t warmup = 0;
    std::uint64_t seed_salt = 0;
    bool apply_machine_transform = true;
    bool prewarm = true;

    /** Phase count of a phased entry; 0 for a plain pair entry. */
    std::uint64_t phases = 0;
};

/**
 * A directory of persisted simulation results.
 *
 * Opening a store creates the directory if needed and sweeps any
 * orphaned temp files an interrupted writer left behind (counted in
 * counters().orphaned_temp).  All I/O failures
 * degrade soft: load() reports Miss/Corrupt and save() returns false,
 * so a read-only or vanished directory never takes an analysis down —
 * it only costs recomputation.
 */
class CampaignStore
{
  public:
    /** Open (creating if necessary) the store at @p directory. */
    explicit CampaignStore(std::string directory);

    const std::string &directory() const { return directory_; }

    /**
     * Load the entry for @p key into @p out.  Returns Hit on success;
     * any other status means @p out is untouched and the caller should
     * recompute (and may save() the fresh result over the bad entry).
     */
    StoreStatus load(const StoreKey &key, uarch::SimulationResult &out);

    /**
     * Persist @p result under @p key (temp file + atomic rename;
     * overwrites any previous entry).  Returns false on I/O failure.
     */
    bool save(const StoreKey &key, const uarch::SimulationResult &result);

    /** load() for a phased entry (full simulatePhased() result). */
    StoreStatus loadPhased(const StoreKey &key,
                           uarch::PhasedSimulationResult &out);

    /** save() for a phased entry. */
    bool savePhased(const StoreKey &key,
                    const uarch::PhasedSimulationResult &result);

    /**
     * Record one simulation executed because the store could not
     * serve it (miss or defensive rejection).  Callers that recompute
     * an entry call this so `counters().computed` — the `simulations=`
     * figure in the session summary — stays accurate.
     */
    void recordComputed();

    /** Lifetime I/O counters of this handle. */
    StoreCounters counters() const;

    /** Number of entry files currently on disk. */
    std::size_t entryCount() const;

    /**
     * Read and verify every entry in the store: magic, engine version,
     * checksum, payload shape, and file-name/header fingerprint
     * agreement.  Results are sorted by file name for stable output.
     */
    std::vector<StoreEntryInfo> scan() const;

    /** Delete every entry; returns the number removed. */
    std::size_t invalidate();

    /**
     * Delete only inconsistent entries (scan status != Hit); returns
     * the number removed.  Healthy entries survive.
     */
    std::size_t invalidateStale();

    /** Entry file path for @p key (diagnostics and tests). */
    std::string entryPath(const StoreKey &key) const;

  private:
    /**
     * Remove temp files a crashed writer left behind (constructor).
     * Returns the number removed.
     */
    std::size_t sweepOrphanedTempFiles();

    /** Tally one load outcome. */
    void recordLoad(StoreStatus status);

    /** Temp-file + atomic-rename write of one serialized entry. */
    bool writeEntry(const std::string &bytes, const std::string &path);

    std::string directory_;

    mutable std::mutex counters_mutex_;
    StoreCounters counters_;
};

/**
 * simulate() through an optional store: serve a Hit from disk,
 * otherwise simulate, record the computation and persist the fresh
 * result.  A null @p store degrades to a plain simulate() call, so
 * analyses take the store as an always-valid optional dependency.
 */
uarch::SimulationResult storedSimulate(CampaignStore *store,
                                       const trace::WorkloadProfile &profile,
                                       const uarch::MachineConfig &machine,
                                       const uarch::SimulationConfig &config);

/** simulatePhased() through an optional store (see storedSimulate). */
uarch::PhasedSimulationResult
storedSimulatePhased(CampaignStore *store,
                     const trace::PhasedWorkload &workload,
                     const uarch::MachineConfig &machine,
                     const uarch::SimulationConfig &config);

} // namespace core
} // namespace speclens

#endif // SPECLENS_CORE_ARTIFACT_STORE_H
