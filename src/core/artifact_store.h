/**
 * @file
 * Persistent campaign artifact store: content-addressed, versioned
 * on-disk cache of simulation results.
 *
 * The paper's methodology is one expensive measurement campaign whose
 * counter data feeds many downstream analyses, long after collection.
 * SpecLens mirrors that: a (benchmark, machine) measurement is
 * deterministic, so once computed it can be persisted and reused by
 * every bench binary, CLI command and test — the in-process memo cache
 * of the Characterizer extended across process boundaries.
 *
 * Entries are *content addressed*: the file name is the hex of a
 * fingerprint over everything that determines the result — the engine
 * version, the simulation window (instructions, warm-up, seed salt),
 * the full workload model and the full machine model (see
 * stats/fingerprint.h).  Recalibrating a profile, changing a cache
 * geometry or bumping kStoreEngineVersion therefore changes the
 * address, and stale entries simply stop being found.
 *
 * Entries are loaded defensively.  Every file carries a magic, the
 * engine version, its own fingerprint, a payload checksum and a
 * length-checked payload; truncated, corrupt, version-mismatched or
 * fingerprint-mismatched entries are counted, reported and recomputed
 * — never trusted.  A load can always fail soft: the caller falls back
 * to simulation, exactly as if the entry had never existed.
 *
 * On-disk layout of one entry (`<16-hex-fingerprint>.slart`, all
 * integers little-endian):
 *
 *   offset  size  field
 *        0     8  magic "SLART001" (format version in the magic)
 *        8     8  engine version (kStoreEngineVersion)
 *       16     8  fingerprint (must equal the file name)
 *       24     8  payload size in bytes
 *       32     8  FNV-1a checksum of the payload bytes
 *       40     -  payload: benchmark name, machine name, window
 *                 (instructions, warmup, seed salt, transform and
 *                 prewarm flags), an entry-kind marker, then the
 *                 result — one SimulationResult (counters as u64s,
 *                 CPI stack and power as IEEE-754 bit patterns) for a
 *                 pair entry, or phase count + per-phase results +
 *                 combined counters + combined CPI for a phased entry
 *
 * Directory layout: entries live in kStoreShardCount shard
 * subdirectories keyed by the top nibble(s) of the fingerprint —
 * `<store>/shard-<hex>/<16-hex>.slart`.  Each shard has its own mutex
 * and its own bounded LRU of deserialized pair results, so concurrent
 * requests against a shared store handle (the `speclens serve` daemon)
 * only contend when they touch the same shard.  Stores written before
 * sharding kept every entry in the store root; load() falls back to
 * that flat path on a shard miss, so pre-shard stores stay warm.  The
 * SL025 lint rule audits the layout (a misfiled entry is an error, a
 * legacy root-level entry a warning).
 *
 * Thread safety: load/save/counters may be called concurrently (the
 * Characterizer's workers do).  Distinct keys touch distinct files;
 * concurrent saves of the same key write identical bytes through
 * unique temp files and an atomic rename, so the last rename wins and
 * every reader sees a complete entry.  I/O counters are lock-free
 * atomics; only the per-shard LRU takes a (sharded) lock, whose wait
 * time is exported as the `core.store.shard.wait` timing.
 *
 * LRU trust model: the cache holds only results this handle itself
 * verified from disk (never unverified saves), and every cache hit
 * revalidates the entry file's size with one stat — a truncated or
 * resized file drops the cached value and re-reads disk.  A same-size
 * external rewrite between two loads on one long-lived handle is the
 * one tamper the cache cannot see; reopening the store (what any other
 * process does) always re-verifies the bytes.
 */

#ifndef SPECLENS_CORE_ARTIFACT_STORE_H
#define SPECLENS_CORE_ARTIFACT_STORE_H

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "uarch/simulation.h"

namespace speclens {
namespace core {

/**
 * Version of the simulation engine baked into every fingerprint and
 * entry header.  Bump it whenever a change to the trace generator,
 * the cache/TLB/predictor models, the CPI stack or the power model
 * alters what simulate() produces for an unchanged (profile, machine,
 * window) triple — every persisted entry then invalidates at once.
 */
constexpr std::uint64_t kStoreEngineVersion = 2;

/** File extension of store entries. */
constexpr const char *kStoreEntrySuffix = ".slart";

/**
 * Number of shard subdirectories (and independent locks/LRUs).  A
 * power of two so the shard index is the fingerprint's top nibble;
 * part of the on-disk layout contract SL025 lints.
 */
constexpr std::size_t kStoreShardCount = 16;

/** Shard subdirectory prefix: `shard-<hex digit>`. */
constexpr const char *kStoreShardPrefix = "shard-";

/** Default total capacity of the in-memory result LRU (all shards). */
constexpr std::size_t kStoreDefaultLruCapacity = 256;

/** Shard index of a fingerprint: its top nibble. */
constexpr std::size_t
storeShardIndex(std::uint64_t fingerprint)
{
    return static_cast<std::size_t>(fingerprint >> 60) &
           (kStoreShardCount - 1);
}

/** Shard subdirectory name ("shard-0" ... "shard-f"). */
std::string storeShardDirName(std::size_t shard);

/**
 * Address and descriptive metadata of one store entry.
 *
 * The fingerprint alone addresses the entry; the names and window are
 * persisted alongside the payload so `speclens campaign info` and the
 * SL016 store-integrity lint rule can describe an entry (and re-derive
 * its expected fingerprint from the shipped models) without having to
 * reverse the hash.
 */
struct StoreKey
{
    std::uint64_t fingerprint = 0;

    std::string benchmark; //!< Workload profile name.
    std::string machine;   //!< Machine full name.

    // Simulation window.
    std::uint64_t instructions = 0;
    std::uint64_t warmup = 0;
    std::uint64_t seed_salt = 0;
    bool apply_machine_transform = true;
    bool prewarm = true;
};

/**
 * Store address of one raw simulate() measurement.  The engine
 * version, the full window, the full workload model and the full
 * machine model all feed the fingerprint, so changing any of them
 * re-addresses the entry and stale data stops being found.
 */
StoreKey makeStoreKey(const trace::WorkloadProfile &profile,
                      const uarch::MachineConfig &machine,
                      const uarch::SimulationConfig &config);

/**
 * Store address of one simulatePhased() measurement.  Domain-separated
 * from pair entries (different top-level tag), so a phased workload
 * never collides with a plain profile of the same name.
 */
StoreKey makeStoreKey(const trace::PhasedWorkload &workload,
                      const uarch::MachineConfig &machine,
                      const uarch::SimulationConfig &config);

/** Outcome of one load. */
enum class StoreStatus {
    Hit,                 //!< Entry present, consistent, deserialized.
    Miss,                //!< No entry file.
    Corrupt,             //!< Truncated / bad magic / checksum mismatch.
    StaleVersion,        //!< Written by a different engine version.
    FingerprintMismatch, //!< Header disagrees with the requested key.
};

/** Human-readable status name ("hit", "corrupt", ...). */
std::string storeStatusName(StoreStatus status);

/** Lifetime I/O counters of one store handle. */
struct StoreCounters
{
    std::size_t hits = 0;
    std::size_t misses = 0;
    std::size_t corrupt = 0;
    std::size_t stale_version = 0;
    std::size_t fingerprint_mismatch = 0;
    std::size_t saves = 0;

    /**
     * Simulations actually executed against this store (every load
     * that did not end in a Hit and was recomputed).  Zero on a warm
     * run — the acceptance check behind `--store` reuse.
     */
    std::size_t computed = 0;

    /**
     * Orphaned temp files (`*.slart.tmp*` and half-written
     * `run-manifest.json.tmp*`) removed when the store was opened.  A
     * writer that died between the temp write and the atomic rename
     * leaves one behind; it never shadows an entry (the suffix
     * excludes it from lookup and scan) but would otherwise
     * accumulate silently.  Counted into the `rejected=` figure of the
     * session summary so interrupted runs are visible.
     */
    std::size_t orphaned_temp = 0;

    /**
     * Hits served from the in-memory LRU without re-reading and
     * re-deserializing the entry file (a subset of `hits`).
     */
    std::size_t lru_hits = 0;

    /** Cached results dropped to keep the LRU within capacity. */
    std::size_t lru_evictions = 0;
};

/** Verified description of one on-disk entry (see CampaignStore::scan). */
struct StoreEntryInfo
{
    /**
     * Entry path relative to the store root: `shard-<x>/<hex>.slart`
     * for a sharded entry, a bare file name for a pre-shard
     * root-level entry.
     */
    std::string filename;
    std::uint64_t file_bytes = 0;

    /**
     * Entry condition: Hit when fully consistent, otherwise the
     * defect class (Corrupt / StaleVersion / FingerprintMismatch —
     * the latter meaning the header disagrees with the file name).
     */
    StoreStatus status = StoreStatus::Hit;

    /** Human-readable defect description; empty when status == Hit. */
    std::string detail;

    // Header fields (valid whenever the header was readable).
    std::uint64_t engine_version = 0;
    std::uint64_t fingerprint = 0;

    // Metadata (valid when status is Hit or StaleVersion).
    std::string benchmark;
    std::string machine;
    std::uint64_t instructions = 0;
    std::uint64_t warmup = 0;
    std::uint64_t seed_salt = 0;
    bool apply_machine_transform = true;
    bool prewarm = true;

    /** Phase count of a phased entry; 0 for a plain pair entry. */
    std::uint64_t phases = 0;
};

/**
 * A directory of persisted simulation results.
 *
 * Opening a store creates the directory (and its shard
 * subdirectories) if needed and sweeps any orphaned temp files an
 * interrupted writer left behind (counted in
 * counters().orphaned_temp).  All I/O failures
 * degrade soft: load() reports Miss/Corrupt and save() returns false,
 * so a read-only or vanished directory never takes an analysis down —
 * it only costs recomputation.
 */
class CampaignStore
{
  public:
    /**
     * Open (creating if necessary) the store at @p directory.
     * @p lru_capacity bounds the total in-memory result cache across
     * all shards (0 disables caching).
     */
    explicit CampaignStore(std::string directory,
                           std::size_t lru_capacity =
                               kStoreDefaultLruCapacity);

    CampaignStore(const CampaignStore &) = delete;
    CampaignStore &operator=(const CampaignStore &) = delete;

    const std::string &directory() const { return directory_; }

    /** Number of shard subdirectories (fixed layout constant). */
    static constexpr std::size_t shardCount() { return kStoreShardCount; }

    /** Absolute path of shard @p shard's subdirectory. */
    std::string shardPath(std::size_t shard) const;

    /** Total in-memory LRU capacity across all shards. */
    std::size_t lruCapacity() const { return lru_capacity_; }

    /** Results currently held by the in-memory LRU (all shards). */
    std::size_t lruSize() const;

    /**
     * Load the entry for @p key into @p out.  Returns Hit on success;
     * any other status means @p out is untouched and the caller should
     * recompute (and may save() the fresh result over the bad entry).
     */
    StoreStatus load(const StoreKey &key, uarch::SimulationResult &out);

    /**
     * Persist @p result under @p key (temp file + atomic rename;
     * overwrites any previous entry).  Returns false on I/O failure.
     */
    bool save(const StoreKey &key, const uarch::SimulationResult &result);

    /** load() for a phased entry (full simulatePhased() result). */
    StoreStatus loadPhased(const StoreKey &key,
                           uarch::PhasedSimulationResult &out);

    /** save() for a phased entry. */
    bool savePhased(const StoreKey &key,
                    const uarch::PhasedSimulationResult &result);

    /**
     * Record one simulation executed because the store could not
     * serve it (miss or defensive rejection).  Callers that recompute
     * an entry call this so `counters().computed` — the `simulations=`
     * figure in the session summary — stays accurate.
     */
    void recordComputed();

    /** Lifetime I/O counters of this handle. */
    StoreCounters counters() const;

    /** Number of entry files currently on disk (root + all shards). */
    std::size_t entryCount() const;

    /**
     * Read and verify every entry in the store: magic, engine version,
     * checksum, payload shape, and file-name/header fingerprint
     * agreement.  Walks the store root (pre-shard entries) and every
     * shard subdirectory; results are sorted by relative path for
     * stable output.
     */
    std::vector<StoreEntryInfo> scan() const;

    /** Delete every entry; returns the number removed. */
    std::size_t invalidate();

    /**
     * Delete only inconsistent entries (scan status != Hit); returns
     * the number removed.  Healthy entries survive.
     */
    std::size_t invalidateStale();

    /** Sharded entry file path for @p key (diagnostics and tests). */
    std::string entryPath(const StoreKey &key) const;

    /**
     * Pre-shard flat path of @p key (`<store>/<hex>.slart`): where a
     * store written before sharding keeps the entry.  load() falls
     * back to it on a shard miss.
     */
    std::string legacyEntryPath(const StoreKey &key) const;

  private:
    /** One shard: its own lock and its slice of the result LRU. */
    struct Shard
    {
        /** Most-recently-used first. */
        struct CachedResult
        {
            std::uint64_t fingerprint = 0;
            uarch::SimulationResult result;
            std::string path;            //!< File the bytes came from.
            std::uint64_t file_bytes = 0; //!< Size at verification time.
        };

        mutable std::mutex mutex;
        std::list<CachedResult> lru;
        std::map<std::uint64_t, std::list<CachedResult>::iterator> index;
    };

    /**
     * Remove temp files a crashed writer left behind (constructor).
     * Returns the number removed.
     */
    std::size_t sweepOrphanedTempFiles();

    /** Tally one load outcome. */
    void recordLoad(StoreStatus status);

    /** Temp-file + atomic-rename write of one serialized entry. */
    bool writeEntry(const std::string &bytes, const std::string &path);

    /**
     * Acquire @p shard's mutex, recording the contended wait time into
     * the `core.store.shard.wait` timing (0 when uncontended).
     */
    std::unique_lock<std::mutex> lockShard(const Shard &shard) const;

    /**
     * Serve @p key from the shard LRU if present and the backing file
     * still has the size recorded at verification time.
     */
    bool lruLookup(Shard &shard, const StoreKey &key,
                   uarch::SimulationResult &out);

    /** Cache a disk-verified result; evicts past capacity. */
    void lruInsert(Shard &shard, std::uint64_t fingerprint,
                   const uarch::SimulationResult &result,
                   const std::string &path, std::uint64_t file_bytes);

    /** Drop @p fingerprint from its shard's LRU (entry rewritten). */
    void lruErase(std::uint64_t fingerprint);

    /** Drop every cached result (invalidate paths). */
    void lruClear();

    std::string directory_;
    std::size_t lru_capacity_;

    mutable std::array<Shard, kStoreShardCount> shards_;
    std::atomic<std::size_t> lru_size_{0};

    // Lock-free I/O counters (materialized by counters()).
    std::atomic<std::size_t> hits_{0};
    std::atomic<std::size_t> misses_{0};
    std::atomic<std::size_t> corrupt_{0};
    std::atomic<std::size_t> stale_version_{0};
    std::atomic<std::size_t> fingerprint_mismatch_{0};
    std::atomic<std::size_t> saves_{0};
    std::atomic<std::size_t> computed_{0};
    std::atomic<std::size_t> orphaned_temp_{0};
    std::atomic<std::size_t> lru_hits_{0};
    std::atomic<std::size_t> lru_evictions_{0};
};

/**
 * simulate() through an optional store: serve a Hit from disk,
 * otherwise simulate, record the computation and persist the fresh
 * result.  A null @p store degrades to a plain simulate() call, so
 * analyses take the store as an always-valid optional dependency.
 */
uarch::SimulationResult storedSimulate(CampaignStore *store,
                                       const trace::WorkloadProfile &profile,
                                       const uarch::MachineConfig &machine,
                                       const uarch::SimulationConfig &config);

/** simulatePhased() through an optional store (see storedSimulate). */
uarch::PhasedSimulationResult
storedSimulatePhased(CampaignStore *store,
                     const trace::PhasedWorkload &workload,
                     const uarch::MachineConfig &machine,
                     const uarch::SimulationConfig &config);

} // namespace core
} // namespace speclens

#endif // SPECLENS_CORE_ARTIFACT_STORE_H
