/**
 * @file
 * Campaign artifact store implementation.
 */

#include "artifact_store.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iterator>
#include <system_error>
#include <thread>
#include <utility>

#include "obs/manifest.h"
#include "obs/metrics.h"

namespace speclens {
namespace core {

namespace {

namespace fs = std::filesystem;

/** Store instruments, resolved once per process. */
struct StoreInstruments
{
    obs::Counter &hits;
    obs::Counter &misses;
    obs::Counter &rejected;
    obs::Counter &saves;
    obs::Counter &bytes_read;
    obs::Counter &bytes_written;
    obs::Counter &orphaned_swept;
    obs::Counter &lru_hits;
    obs::Counter &lru_evictions;
    obs::Timing &load_time;
    obs::Timing &save_time;
    obs::Timing &shard_wait;

    static const StoreInstruments &
    get()
    {
        obs::Registry &registry = obs::Registry::global();
        static StoreInstruments instruments{
            registry.counter("core.store.hits"),
            registry.counter("core.store.misses"),
            registry.counter("core.store.rejected"),
            registry.counter("core.store.saves"),
            registry.counter("core.store.bytes_read"),
            registry.counter("core.store.bytes_written"),
            registry.counter("core.store.orphaned_temp_swept"),
            registry.counter("core.store.lru.hits"),
            registry.counter("core.store.lru.evictions"),
            registry.timing("core.store.load"),
            registry.timing("core.store.save"),
            registry.timing("core.store.shard.wait"),
        };
        return instruments;
    }
};

constexpr char kMagic[8] = {'S', 'L', 'A', 'R', 'T', '0', '0', '1'};
constexpr std::size_t kHeaderBytes = 40;

// Entry-kind marker in the payload: what follows the metadata.
constexpr std::uint64_t kKindPair = 0;   // one SimulationResult
constexpr std::uint64_t kKindPhased = 1; // PhasedSimulationResult

/** FNV-1a over a byte range (the payload checksum). */
std::uint64_t
checksumBytes(const char *data, std::size_t size)
{
    std::uint64_t hash = 14695981039346656037ull;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= static_cast<unsigned char>(data[i]);
        hash *= 1099511628211ull;
    }
    return hash;
}

/** Append-only little-endian byte sink. */
class ByteWriter
{
  public:
    void
    u64(std::uint64_t value)
    {
        for (int shift = 0; shift < 64; shift += 8)
            buffer_.push_back(static_cast<char>((value >> shift) & 0xff));
    }

    void
    f64(double value)
    {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &value, sizeof(bits));
        u64(bits);
    }

    void
    str(const std::string &value)
    {
        u64(value.size());
        buffer_.append(value);
    }

    const std::string &bytes() const { return buffer_; }

  private:
    std::string buffer_;
};

/** Bounds-checked little-endian byte source; any overrun sets fail. */
class ByteReader
{
  public:
    ByteReader(const char *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    std::uint64_t
    u64()
    {
        if (position_ + 8 > size_) {
            failed_ = true;
            return 0;
        }
        std::uint64_t value = 0;
        for (int shift = 0; shift < 64; shift += 8) {
            value |= static_cast<std::uint64_t>(static_cast<unsigned char>(
                         data_[position_++]))
                     << shift;
        }
        return value;
    }

    double
    f64()
    {
        std::uint64_t bits = u64();
        double value = 0.0;
        std::memcpy(&value, &bits, sizeof(value));
        return value;
    }

    std::string
    str()
    {
        std::uint64_t length = u64();
        if (failed_ || length > size_ - position_) {
            failed_ = true;
            return {};
        }
        std::string value(data_ + position_,
                          static_cast<std::size_t>(length));
        position_ += static_cast<std::size_t>(length);
        return value;
    }

    bool failed() const { return failed_; }
    bool exhausted() const { return position_ == size_; }

  private:
    const char *data_;
    std::size_t size_;
    std::size_t position_ = 0;
    bool failed_ = false;
};

/**
 * Serialize one PerfCounters block.  Field order is part of the
 * on-disk format: extending PerfCounters / CpiStack / PowerBreakdown
 * requires appending here, in readCounters()/readResult(), and
 * bumping the magic.
 */
void
writeCounters(ByteWriter &out, const uarch::PerfCounters &c)
{
    out.u64(c.instructions);
    out.u64(c.loads);
    out.u64(c.stores);
    out.u64(c.branches);
    out.u64(c.taken_branches);
    out.u64(c.fp_ops);
    out.u64(c.simd_ops);
    out.u64(c.kernel_instructions);
    out.u64(c.l1d_accesses);
    out.u64(c.l1d_misses);
    out.u64(c.l1i_accesses);
    out.u64(c.l1i_misses);
    out.u64(c.l2d_accesses);
    out.u64(c.l2d_misses);
    out.u64(c.l2i_accesses);
    out.u64(c.l2i_misses);
    out.u64(c.l3_accesses);
    out.u64(c.l3_misses);
    out.u64(c.dtlb_accesses);
    out.u64(c.dtlb_misses);
    out.u64(c.itlb_accesses);
    out.u64(c.itlb_misses);
    out.u64(c.l2tlb_misses);
    out.u64(c.page_walks);
    out.u64(c.branch_mispredictions);
    out.u64(c.prefetch_fills);
    out.u64(c.prefetch_useful);
    out.u64(c.prefetch_evicted_unused);
    out.u64(c.way_pred_hits);
    out.u64(c.way_pred_mispredicts);
    out.u64(c.dram_accesses);
    out.u64(c.dram_row_hits);
    out.u64(c.dram_busy_cycles);
    out.u64(c.dram_budget_cycles);
}

void
writeResult(ByteWriter &out, const uarch::SimulationResult &result)
{
    writeCounters(out, result.counters);

    const uarch::CpiStack &s = result.cpi_stack;
    out.f64(s.base);
    out.f64(s.dependency);
    out.f64(s.frontend_icache);
    out.f64(s.frontend_branch);
    out.f64(s.backend_l2);
    out.f64(s.backend_l3);
    out.f64(s.backend_memory);
    out.f64(s.backend_tlb);

    const uarch::PowerBreakdown &p = result.power;
    out.f64(p.core_watts);
    out.f64(p.llc_watts);
    out.f64(p.dram_watts);
}

void
readCounters(ByteReader &in, uarch::PerfCounters &c)
{
    c.instructions = in.u64();
    c.loads = in.u64();
    c.stores = in.u64();
    c.branches = in.u64();
    c.taken_branches = in.u64();
    c.fp_ops = in.u64();
    c.simd_ops = in.u64();
    c.kernel_instructions = in.u64();
    c.l1d_accesses = in.u64();
    c.l1d_misses = in.u64();
    c.l1i_accesses = in.u64();
    c.l1i_misses = in.u64();
    c.l2d_accesses = in.u64();
    c.l2d_misses = in.u64();
    c.l2i_accesses = in.u64();
    c.l2i_misses = in.u64();
    c.l3_accesses = in.u64();
    c.l3_misses = in.u64();
    c.dtlb_accesses = in.u64();
    c.dtlb_misses = in.u64();
    c.itlb_accesses = in.u64();
    c.itlb_misses = in.u64();
    c.l2tlb_misses = in.u64();
    c.page_walks = in.u64();
    c.branch_mispredictions = in.u64();
    c.prefetch_fills = in.u64();
    c.prefetch_useful = in.u64();
    c.prefetch_evicted_unused = in.u64();
    c.way_pred_hits = in.u64();
    c.way_pred_mispredicts = in.u64();
    c.dram_accesses = in.u64();
    c.dram_row_hits = in.u64();
    c.dram_busy_cycles = in.u64();
    c.dram_budget_cycles = in.u64();
}

void
readResult(ByteReader &in, uarch::SimulationResult &result)
{
    readCounters(in, result.counters);

    uarch::CpiStack &s = result.cpi_stack;
    s.base = in.f64();
    s.dependency = in.f64();
    s.frontend_icache = in.f64();
    s.frontend_branch = in.f64();
    s.backend_l2 = in.f64();
    s.backend_l3 = in.f64();
    s.backend_memory = in.f64();
    s.backend_tlb = in.f64();

    uarch::PowerBreakdown &p = result.power;
    p.core_watts = in.f64();
    p.llc_watts = in.f64();
    p.dram_watts = in.f64();
}

void
writeMetadata(ByteWriter &payload, const StoreKey &key)
{
    payload.str(key.benchmark);
    payload.str(key.machine);
    payload.u64(key.instructions);
    payload.u64(key.warmup);
    payload.u64(key.seed_salt);
    payload.u64(key.apply_machine_transform ? 1 : 0);
    payload.u64(key.prewarm ? 1 : 0);
}

std::string
finishEntry(const StoreKey &key, const ByteWriter &payload)
{
    std::string bytes(kMagic, sizeof(kMagic));
    ByteWriter header;
    header.u64(kStoreEngineVersion);
    header.u64(key.fingerprint);
    header.u64(payload.bytes().size());
    header.u64(checksumBytes(payload.bytes().data(),
                             payload.bytes().size()));
    bytes += header.bytes();
    bytes += payload.bytes();
    return bytes;
}

std::string
serializeEntry(const StoreKey &key, const uarch::SimulationResult &result)
{
    ByteWriter payload;
    writeMetadata(payload, key);
    payload.u64(kKindPair);
    writeResult(payload, result);
    return finishEntry(key, payload);
}

std::string
serializePhasedEntry(const StoreKey &key,
                     const uarch::PhasedSimulationResult &result)
{
    ByteWriter payload;
    writeMetadata(payload, key);
    payload.u64(kKindPhased);
    payload.u64(result.per_phase.size());
    for (const uarch::SimulationResult &phase : result.per_phase)
        writeResult(payload, phase);
    writeCounters(payload, result.combined_counters);
    payload.f64(result.combined_cpi);
    return finishEntry(key, payload);
}

std::string
fingerprintHex(std::uint64_t fingerprint)
{
    char buffer[17];
    std::snprintf(buffer, sizeof(buffer), "%016llx",
                  static_cast<unsigned long long>(fingerprint));
    return std::string(buffer);
}

/** Read a whole file; false on any I/O failure. */
bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream file(path, std::ios::binary);
    if (!file)
        return false;
    std::string bytes((std::istreambuf_iterator<char>(file)),
                      std::istreambuf_iterator<char>());
    if (file.bad())
        return false;
    out = std::move(bytes);
    return true;
}

/**
 * Parse and verify one serialized entry.
 *
 * @param expect_fingerprint The fingerprint the caller addressed
 *        (from the key or the file name); checked against the header.
 * @param out Receives a pair entry's result on full success (may be
 *        null).  Requesting a pair from a phased entry is Corrupt.
 * @param out_phased Same for a phased entry.  Null together with
 *        @p out means verification only: either kind is accepted.
 * @param info Receives header/metadata fields as far as they could be
 *        read (may be null).
 */
StoreStatus
verifyEntry(const std::string &bytes, std::uint64_t expect_fingerprint,
            uarch::SimulationResult *out,
            uarch::PhasedSimulationResult *out_phased, StoreEntryInfo *info)
{
    auto fail = [&](StoreStatus status, const std::string &detail) {
        if (info) {
            info->status = status;
            info->detail = detail;
        }
        return status;
    };

    if (bytes.size() < kHeaderBytes)
        return fail(StoreStatus::Corrupt, "truncated header");
    if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0)
        return fail(StoreStatus::Corrupt, "bad magic");

    ByteReader header(bytes.data() + sizeof(kMagic),
                      kHeaderBytes - sizeof(kMagic));
    std::uint64_t engine_version = header.u64();
    std::uint64_t fingerprint = header.u64();
    std::uint64_t payload_size = header.u64();
    std::uint64_t checksum = header.u64();
    if (info) {
        info->engine_version = engine_version;
        info->fingerprint = fingerprint;
    }

    if (payload_size != bytes.size() - kHeaderBytes)
        return fail(StoreStatus::Corrupt, "truncated payload");
    const char *payload = bytes.data() + kHeaderBytes;
    if (checksumBytes(payload, static_cast<std::size_t>(payload_size)) !=
        checksum)
        return fail(StoreStatus::Corrupt, "checksum mismatch");

    // The payload is now bit-trustworthy; metadata can be surfaced
    // even for entries a different engine version wrote.
    ByteReader reader(payload, static_cast<std::size_t>(payload_size));
    std::string benchmark = reader.str();
    std::string machine = reader.str();
    std::uint64_t instructions = reader.u64();
    std::uint64_t warmup = reader.u64();
    std::uint64_t seed_salt = reader.u64();
    bool transform = reader.u64() != 0;
    bool prewarm = reader.u64() != 0;
    std::uint64_t kind = reader.u64();
    if (info && !reader.failed()) {
        info->benchmark = benchmark;
        info->machine = machine;
        info->instructions = instructions;
        info->warmup = warmup;
        info->seed_salt = seed_salt;
        info->apply_machine_transform = transform;
        info->prewarm = prewarm;
    }
    if (reader.failed() || (kind != kKindPair && kind != kKindPhased))
        return fail(StoreStatus::Corrupt, "malformed metadata");

    if (engine_version != kStoreEngineVersion)
        return fail(StoreStatus::StaleVersion,
                    "engine version " + std::to_string(engine_version) +
                        " != " + std::to_string(kStoreEngineVersion));
    if (fingerprint != expect_fingerprint)
        return fail(StoreStatus::FingerprintMismatch,
                    "header fingerprint " + fingerprintHex(fingerprint) +
                        " != expected " +
                        fingerprintHex(expect_fingerprint));

    // Kind agreement: a checksum-valid entry of the wrong kind under
    // the requested address can only be manual tampering (the kind is
    // part of the fingerprint domain), so reject it as corrupt.
    if (out && kind != kKindPair)
        return fail(StoreStatus::Corrupt, "phased entry, pair requested");
    if (out_phased && kind != kKindPhased)
        return fail(StoreStatus::Corrupt, "pair entry, phased requested");

    if (kind == kKindPair) {
        uarch::SimulationResult result;
        readResult(reader, result);
        if (reader.failed() || !reader.exhausted())
            return fail(StoreStatus::Corrupt, "malformed payload");
        if (out)
            *out = result;
    } else {
        uarch::PhasedSimulationResult result;
        std::uint64_t phases = reader.u64();
        for (std::uint64_t k = 0; k < phases && !reader.failed(); ++k) {
            uarch::SimulationResult phase;
            readResult(reader, phase);
            result.per_phase.push_back(phase);
        }
        readCounters(reader, result.combined_counters);
        result.combined_cpi = reader.f64();
        if (reader.failed() || !reader.exhausted())
            return fail(StoreStatus::Corrupt, "malformed payload");
        if (info)
            info->phases = phases;
        if (out_phased)
            *out_phased = std::move(result);
    }

    if (info) {
        info->status = StoreStatus::Hit;
        info->detail.clear();
    }
    return StoreStatus::Hit;
}

} // namespace

std::string
storeShardDirName(std::size_t shard)
{
    static const char digits[] = "0123456789abcdef";
    return std::string(kStoreShardPrefix) +
           digits[shard & (kStoreShardCount - 1)];
}

StoreKey
makeStoreKey(const trace::WorkloadProfile &profile,
             const uarch::MachineConfig &machine,
             const uarch::SimulationConfig &config)
{
    stats::Fingerprinter fp;
    fp.tag("speclens.pair");
    fp.u64(kStoreEngineVersion);
    config.hashInto(fp);
    profile.hashInto(fp);
    machine.hashInto(fp);

    StoreKey key;
    key.fingerprint = fp.value();
    key.benchmark = profile.name;
    key.machine = machine.name;
    key.instructions = config.instructions;
    key.warmup = config.warmup;
    key.seed_salt = config.seed_salt;
    key.apply_machine_transform = config.apply_machine_transform;
    key.prewarm = config.prewarm;
    return key;
}

StoreKey
makeStoreKey(const trace::PhasedWorkload &workload,
             const uarch::MachineConfig &machine,
             const uarch::SimulationConfig &config)
{
    stats::Fingerprinter fp;
    fp.tag("speclens.phased");
    fp.u64(kStoreEngineVersion);
    config.hashInto(fp);
    workload.hashInto(fp);
    machine.hashInto(fp);

    StoreKey key;
    key.fingerprint = fp.value();
    key.benchmark = workload.name;
    key.machine = machine.name;
    key.instructions = config.instructions;
    key.warmup = config.warmup;
    key.seed_salt = config.seed_salt;
    key.apply_machine_transform = config.apply_machine_transform;
    key.prewarm = config.prewarm;
    return key;
}

uarch::SimulationResult
storedSimulate(CampaignStore *store, const trace::WorkloadProfile &profile,
               const uarch::MachineConfig &machine,
               const uarch::SimulationConfig &config)
{
    if (!store)
        return uarch::simulate(profile, machine, config);

    StoreKey key = makeStoreKey(profile, machine, config);
    uarch::SimulationResult loaded;
    if (store->load(key, loaded) == StoreStatus::Hit)
        return loaded;
    uarch::SimulationResult result =
        uarch::simulate(profile, machine, config);
    store->recordComputed();
    store->save(key, result);
    return result;
}

uarch::PhasedSimulationResult
storedSimulatePhased(CampaignStore *store,
                     const trace::PhasedWorkload &workload,
                     const uarch::MachineConfig &machine,
                     const uarch::SimulationConfig &config)
{
    if (!store)
        return uarch::simulatePhased(workload, machine, config);

    StoreKey key = makeStoreKey(workload, machine, config);
    uarch::PhasedSimulationResult loaded;
    if (store->loadPhased(key, loaded) == StoreStatus::Hit)
        return loaded;
    uarch::PhasedSimulationResult result =
        uarch::simulatePhased(workload, machine, config);
    store->recordComputed();
    store->savePhased(key, result);
    return result;
}

std::string
storeStatusName(StoreStatus status)
{
    switch (status) {
      case StoreStatus::Hit: return "hit";
      case StoreStatus::Miss: return "miss";
      case StoreStatus::Corrupt: return "corrupt";
      case StoreStatus::StaleVersion: return "stale-version";
      case StoreStatus::FingerprintMismatch:
          return "fingerprint-mismatch";
    }
    return "unknown";
}

CampaignStore::CampaignStore(std::string directory,
                             std::size_t lru_capacity)
    : directory_(std::move(directory)), lru_capacity_(lru_capacity)
{
    // Best effort: a directory that cannot be created degrades the
    // store to misses + failed saves rather than aborting the run.
    std::error_code ec;
    fs::create_directories(directory_, ec);
    for (std::size_t shard = 0; shard < kStoreShardCount; ++shard)
        fs::create_directories(shardPath(shard), ec);

    std::size_t swept = sweepOrphanedTempFiles();
    if (swept > 0) {
        StoreInstruments::get().orphaned_swept.add(swept);
        orphaned_temp_.fetch_add(swept, std::memory_order_relaxed);
    }
}

std::string
CampaignStore::shardPath(std::size_t shard) const
{
    return directory_ + "/" + storeShardDirName(shard);
}

std::size_t
CampaignStore::sweepOrphanedTempFiles()
{
    // A temp file is `<entry>.slart.tmp<thread-hash>` (or a
    // half-written `run-manifest.json.tmp<hash>`); anything matching
    // is a leftover from a writer that died between the temp write and
    // the atomic rename.  No live writer can race this: temp names are
    // keyed to running threads and the sweep happens before this
    // handle serves any save.
    const std::string entry_marker =
        std::string(kStoreEntrySuffix) + ".tmp";
    const std::string manifest_marker =
        std::string(obs::kManifestFileName) + ".tmp";
    std::size_t removed = 0;
    auto sweepDir = [&](const std::string &dir) {
        std::error_code ec;
        for (const auto &file : fs::directory_iterator(dir, ec)) {
            std::string name = file.path().filename().string();
            if (name.find(entry_marker) == std::string::npos &&
                name.rfind(manifest_marker, 0) != 0)
                continue;
            std::error_code remove_ec;
            if (fs::remove(file.path(), remove_ec))
                ++removed;
        }
    };
    sweepDir(directory_);
    for (std::size_t shard = 0; shard < kStoreShardCount; ++shard)
        sweepDir(shardPath(shard));
    return removed;
}

std::string
CampaignStore::entryPath(const StoreKey &key) const
{
    return shardPath(storeShardIndex(key.fingerprint)) + "/" +
           fingerprintHex(key.fingerprint) + kStoreEntrySuffix;
}

std::string
CampaignStore::legacyEntryPath(const StoreKey &key) const
{
    return directory_ + "/" + fingerprintHex(key.fingerprint) +
           kStoreEntrySuffix;
}

std::unique_lock<std::mutex>
CampaignStore::lockShard(const Shard &shard) const
{
    if (obs::kMetricsEnabled) {
        std::unique_lock<std::mutex> lock(shard.mutex,
                                          std::try_to_lock);
        if (lock.owns_lock()) {
            StoreInstruments::get().shard_wait.record(0);
            return lock;
        }
        const std::uint64_t start = obs::nowNs();
        lock.lock();
        StoreInstruments::get().shard_wait.record(obs::nowNs() - start);
        return lock;
    }
    return std::unique_lock<std::mutex>(shard.mutex);
}

bool
CampaignStore::lruLookup(Shard &shard, const StoreKey &key,
                         uarch::SimulationResult &out)
{
    if (lru_capacity_ == 0)
        return false;

    std::string path;
    std::uint64_t cached_bytes = 0;
    {
        std::unique_lock<std::mutex> lock = lockShard(shard);
        auto it = shard.index.find(key.fingerprint);
        if (it == shard.index.end())
            return false;
        path = it->second->path;
        cached_bytes = it->second->file_bytes;
    }

    // Revalidate with one stat: a rewritten entry (different size) or
    // a vanished file drops the cached value and falls back to a full
    // defensive disk load.
    std::error_code ec;
    std::uint64_t on_disk = fs::file_size(path, ec);
    std::unique_lock<std::mutex> lock = lockShard(shard);
    auto it = shard.index.find(key.fingerprint);
    if (it == shard.index.end())
        return false;
    if (ec || on_disk != cached_bytes) {
        shard.lru.erase(it->second);
        shard.index.erase(it);
        lru_size_.fetch_sub(1, std::memory_order_relaxed);
        return false;
    }
    // Refresh recency.
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    out = it->second->result;
    lru_hits_.fetch_add(1, std::memory_order_relaxed);
    StoreInstruments::get().lru_hits.add();
    return true;
}

void
CampaignStore::lruInsert(Shard &shard, std::uint64_t fingerprint,
                         const uarch::SimulationResult &result,
                         const std::string &path,
                         std::uint64_t file_bytes)
{
    if (lru_capacity_ == 0)
        return;
    const std::size_t per_shard =
        std::max<std::size_t>(1, lru_capacity_ / kStoreShardCount);

    std::unique_lock<std::mutex> lock = lockShard(shard);
    auto it = shard.index.find(fingerprint);
    if (it != shard.index.end()) {
        it->second->result = result;
        it->second->path = path;
        it->second->file_bytes = file_bytes;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        return;
    }
    shard.lru.push_front(
        Shard::CachedResult{fingerprint, result, path, file_bytes});
    shard.index.emplace(fingerprint, shard.lru.begin());
    lru_size_.fetch_add(1, std::memory_order_relaxed);
    while (shard.lru.size() > per_shard) {
        shard.index.erase(shard.lru.back().fingerprint);
        shard.lru.pop_back();
        lru_size_.fetch_sub(1, std::memory_order_relaxed);
        lru_evictions_.fetch_add(1, std::memory_order_relaxed);
        StoreInstruments::get().lru_evictions.add();
    }
}

void
CampaignStore::lruErase(std::uint64_t fingerprint)
{
    if (lru_capacity_ == 0)
        return;
    Shard &shard = shards_[storeShardIndex(fingerprint)];
    std::unique_lock<std::mutex> lock = lockShard(shard);
    auto it = shard.index.find(fingerprint);
    if (it == shard.index.end())
        return;
    shard.lru.erase(it->second);
    shard.index.erase(it);
    lru_size_.fetch_sub(1, std::memory_order_relaxed);
}

void
CampaignStore::lruClear()
{
    for (Shard &shard : shards_) {
        std::unique_lock<std::mutex> lock = lockShard(shard);
        lru_size_.fetch_sub(shard.lru.size(),
                            std::memory_order_relaxed);
        shard.lru.clear();
        shard.index.clear();
    }
}

std::size_t
CampaignStore::lruSize() const
{
    return lru_size_.load(std::memory_order_relaxed);
}

StoreStatus
CampaignStore::load(const StoreKey &key, uarch::SimulationResult &out)
{
    obs::Span span(StoreInstruments::get().load_time);
    Shard &shard = shards_[storeShardIndex(key.fingerprint)];
    if (lruLookup(shard, key, out)) {
        recordLoad(StoreStatus::Hit);
        return StoreStatus::Hit;
    }

    std::string bytes;
    std::string path = entryPath(key);
    bool readable = readFile(path, bytes);
    if (!readable) {
        // Pre-shard stores keep entries flat in the root.
        path = legacyEntryPath(key);
        readable = readFile(path, bytes);
    }

    StoreStatus status;
    if (!readable) {
        status = StoreStatus::Miss;
    } else {
        StoreInstruments::get().bytes_read.add(bytes.size());
        status = verifyEntry(bytes, key.fingerprint, &out, nullptr,
                             nullptr);
    }
    if (status == StoreStatus::Hit)
        lruInsert(shard, key.fingerprint, out, path, bytes.size());
    recordLoad(status);
    return status;
}

StoreStatus
CampaignStore::loadPhased(const StoreKey &key,
                          uarch::PhasedSimulationResult &out)
{
    obs::Span span(StoreInstruments::get().load_time);
    std::string bytes;
    bool readable = readFile(entryPath(key), bytes);
    if (!readable)
        readable = readFile(legacyEntryPath(key), bytes);

    StoreStatus status;
    if (!readable) {
        status = StoreStatus::Miss;
    } else {
        StoreInstruments::get().bytes_read.add(bytes.size());
        status = verifyEntry(bytes, key.fingerprint, nullptr, &out,
                             nullptr);
    }
    recordLoad(status);
    return status;
}

void
CampaignStore::recordLoad(StoreStatus status)
{
    const StoreInstruments &instruments = StoreInstruments::get();
    switch (status) {
      case StoreStatus::Hit:
          hits_.fetch_add(1, std::memory_order_relaxed);
          instruments.hits.add();
          break;
      case StoreStatus::Miss:
          misses_.fetch_add(1, std::memory_order_relaxed);
          instruments.misses.add();
          break;
      case StoreStatus::Corrupt:
          corrupt_.fetch_add(1, std::memory_order_relaxed);
          instruments.rejected.add();
          break;
      case StoreStatus::StaleVersion:
          stale_version_.fetch_add(1, std::memory_order_relaxed);
          instruments.rejected.add();
          break;
      case StoreStatus::FingerprintMismatch:
          fingerprint_mismatch_.fetch_add(1, std::memory_order_relaxed);
          instruments.rejected.add();
          break;
    }
}

void
CampaignStore::recordComputed()
{
    computed_.fetch_add(1, std::memory_order_relaxed);
}

bool
CampaignStore::save(const StoreKey &key,
                    const uarch::SimulationResult &result)
{
    // The cached copy (if any) predates this write; drop it so the
    // next load re-verifies the fresh bytes.
    lruErase(key.fingerprint);
    return writeEntry(serializeEntry(key, result), entryPath(key));
}

bool
CampaignStore::savePhased(const StoreKey &key,
                          const uarch::PhasedSimulationResult &result)
{
    lruErase(key.fingerprint);
    return writeEntry(serializePhasedEntry(key, result), entryPath(key));
}

bool
CampaignStore::writeEntry(const std::string &bytes,
                          const std::string &path)
{
    obs::Span span(StoreInstruments::get().save_time);

    // Unique temp name per thread: two threads racing on the same key
    // write identical bytes to distinct temp files; both renames
    // install a complete entry.
    std::string temp =
        path + ".tmp" +
        std::to_string(
            std::hash<std::thread::id>{}(std::this_thread::get_id()));
    {
        std::ofstream file(temp, std::ios::binary | std::ios::trunc);
        if (!file)
            return false;
        file.write(bytes.data(),
                   static_cast<std::streamsize>(bytes.size()));
        if (!file)
            return false;
    }
    std::error_code ec;
    fs::rename(temp, path, ec);
    if (ec) {
        fs::remove(temp, ec);
        return false;
    }

    StoreInstruments::get().saves.add();
    StoreInstruments::get().bytes_written.add(bytes.size());
    saves_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

StoreCounters
CampaignStore::counters() const
{
    StoreCounters out;
    out.hits = hits_.load(std::memory_order_relaxed);
    out.misses = misses_.load(std::memory_order_relaxed);
    out.corrupt = corrupt_.load(std::memory_order_relaxed);
    out.stale_version = stale_version_.load(std::memory_order_relaxed);
    out.fingerprint_mismatch =
        fingerprint_mismatch_.load(std::memory_order_relaxed);
    out.saves = saves_.load(std::memory_order_relaxed);
    out.computed = computed_.load(std::memory_order_relaxed);
    out.orphaned_temp = orphaned_temp_.load(std::memory_order_relaxed);
    out.lru_hits = lru_hits_.load(std::memory_order_relaxed);
    out.lru_evictions = lru_evictions_.load(std::memory_order_relaxed);
    return out;
}

std::size_t
CampaignStore::entryCount() const
{
    auto countDir = [](const std::string &dir) {
        std::error_code ec;
        std::size_t count = 0;
        for (const auto &entry : fs::directory_iterator(dir, ec)) {
            if (entry.path().extension() == kStoreEntrySuffix)
                ++count;
        }
        return count;
    };
    std::size_t count = countDir(directory_);
    for (std::size_t shard = 0; shard < kStoreShardCount; ++shard)
        count += countDir(shardPath(shard));
    return count;
}

std::vector<StoreEntryInfo>
CampaignStore::scan() const
{
    std::vector<StoreEntryInfo> entries;
    auto scanDir = [&](const std::string &dir,
                       const std::string &rel_prefix) {
        std::error_code ec;
        for (const auto &file : fs::directory_iterator(dir, ec)) {
            if (file.path().extension() != kStoreEntrySuffix)
                continue;

            StoreEntryInfo info;
            info.filename =
                rel_prefix + file.path().filename().string();
            std::error_code size_ec;
            auto size = fs::file_size(file.path(), size_ec);
            info.file_bytes = size_ec ? 0 : size;

            // The entry's address is its file name; a rename is a
            // fingerprint mismatch even when the content is intact.
            std::string stem = file.path().stem().string();
            std::uint64_t addressed = 0;
            bool valid_name = stem.size() == 16;
            if (valid_name) {
                char *end = nullptr;
                addressed = std::strtoull(stem.c_str(), &end, 16);
                valid_name = end && *end == '\0';
            }

            std::string bytes;
            if (!readFile(file.path().string(), bytes)) {
                info.status = StoreStatus::Corrupt;
                info.detail = "unreadable";
            } else if (!valid_name) {
                info.status = StoreStatus::Corrupt;
                info.detail =
                    "file name is not a 16-digit hex fingerprint";
            } else {
                verifyEntry(bytes, addressed, nullptr, nullptr, &info);
            }
            entries.push_back(std::move(info));
        }
    };
    scanDir(directory_, "");
    for (std::size_t shard = 0; shard < kStoreShardCount; ++shard)
        scanDir(shardPath(shard), storeShardDirName(shard) + "/");
    std::sort(entries.begin(), entries.end(),
              [](const StoreEntryInfo &a, const StoreEntryInfo &b) {
                  return a.filename < b.filename;
              });
    return entries;
}

std::size_t
CampaignStore::invalidate()
{
    lruClear();
    auto clearDir = [](const std::string &dir) {
        std::error_code ec;
        std::size_t removed = 0;
        for (const auto &file : fs::directory_iterator(dir, ec)) {
            if (file.path().extension() != kStoreEntrySuffix)
                continue;
            std::error_code remove_ec;
            if (fs::remove(file.path(), remove_ec))
                ++removed;
        }
        return removed;
    };
    std::size_t removed = clearDir(directory_);
    for (std::size_t shard = 0; shard < kStoreShardCount; ++shard)
        removed += clearDir(shardPath(shard));
    return removed;
}

std::size_t
CampaignStore::invalidateStale()
{
    lruClear();
    std::size_t removed = 0;
    for (const StoreEntryInfo &info : scan()) {
        if (info.status == StoreStatus::Hit)
            continue;
        std::error_code ec;
        if (fs::remove(directory_ + "/" + info.filename, ec))
            ++removed;
    }
    return removed;
}

} // namespace core
} // namespace speclens
