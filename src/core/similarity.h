/**
 * @file
 * The PCA + hierarchical-clustering similarity pipeline (Section III).
 *
 * Raw metric matrices are z-scored, reduced with PCA under the Kaiser
 * criterion, and clustered on Euclidean distances in PC space.  The
 * result bundles everything the downstream analyses need: retained
 * components and variance coverage (reported in every figure caption of
 * the paper), PC scores for scatter plots (Figs. 9-12), and the
 * dendrogram (Figs. 2-4, 7, 8, 13).
 */

#ifndef SPECLENS_CORE_SIMILARITY_H
#define SPECLENS_CORE_SIMILARITY_H

#include <string>
#include <vector>

#include "stats/clustering.h"
#include "stats/matrix.h"
#include "stats/pca.h"

namespace speclens {
namespace core {

/** Pipeline configuration. */
struct SimilarityConfig
{
    /** PCA component retention (Kaiser >= 1 in the paper). */
    stats::RetentionPolicy retention = stats::RetentionPolicy::kaiser();

    /** Cluster-merge rule. */
    stats::Linkage linkage = stats::Linkage::Ward;

    /** Distance metric in PC space (Euclidean in the paper). */
    stats::DistanceMetric metric = stats::DistanceMetric::Euclidean;
};

/** Output of the similarity pipeline. */
struct SimilarityResult
{
    /** Observation labels (benchmark names), row-aligned with scores. */
    std::vector<std::string> labels;

    /** Fitted PCA model. */
    stats::PcaResult pca;

    /** Observations in retained-PC space. */
    stats::Matrix scores;

    /** Hierarchical clustering of the PC-space points. */
    stats::Dendrogram dendrogram;

    /** Configuration used. */
    SimilarityConfig config;

    /**
     * Euclidean distance between two observations in PC space — the
     * "(dis)similarity" number the paper reads off its analyses.
     */
    double pcDistance(std::size_t a, std::size_t b) const;

    /** Index of a label. @throws std::out_of_range when absent. */
    std::size_t indexOf(const std::string &label) const;

    /**
     * The observation whose PC-space point is furthest from all others
     * (max-min distance) — "the most distinct benchmark" statements.
     */
    std::size_t mostDistinct() const;

    /** Render the dendrogram with benchmark labels. */
    std::string renderDendrogram() const;
};

/**
 * Run the pipeline on a raw features matrix.
 *
 * @param features Observations x metrics, raw scale.
 * @param labels One label per row.
 * @param config Pipeline knobs.
 */
SimilarityResult analyzeSimilarity(const stats::Matrix &features,
                                   std::vector<std::string> labels,
                                   const SimilarityConfig &config = {});

} // namespace core
} // namespace speclens

#endif // SPECLENS_CORE_SIMILARITY_H
