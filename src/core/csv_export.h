/**
 * @file
 * CSV serialisation of feature matrices and analysis results.
 *
 * Characterization studies like the paper's are usually post-processed
 * in R / Python / JMP (the original authors used commercial statistics
 * tooling); these helpers write the measurement campaign in a form
 * those tools ingest directly.
 */

#ifndef SPECLENS_CORE_CSV_EXPORT_H
#define SPECLENS_CORE_CSV_EXPORT_H

#include <ostream>
#include <string>
#include <vector>

#include "core/similarity.h"
#include "stats/matrix.h"

namespace speclens {
namespace core {

/**
 * Quote a CSV field per RFC 4180 (quotes applied only when needed:
 * commas, quotes or newlines present).
 */
std::string csvQuote(const std::string &field);

/**
 * Write a labelled matrix as CSV: a header of feature names preceded
 * by a "benchmark" column, then one row per observation.
 *
 * @param out Destination stream.
 * @param labels Row labels (observation names).
 * @param feature_names Column names; must match matrix columns.
 * @param features The matrix; rows must match labels.
 * @throws std::invalid_argument on dimension mismatch.
 */
void writeCsv(std::ostream &out, const std::vector<std::string> &labels,
              const std::vector<std::string> &feature_names,
              const stats::Matrix &features);

/**
 * Write a similarity analysis as CSV: benchmark, PC scores and the
 * dendrogram join height of each observation.
 */
void writeSimilarityCsv(std::ostream &out,
                        const SimilarityResult &analysis);

} // namespace core
} // namespace speclens

#endif // SPECLENS_CORE_CSV_EXPORT_H
