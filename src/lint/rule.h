/**
 * @file
 * The Rule interface and the data a lint run inspects.
 *
 * A LintContext snapshots everything the rules verify: the three
 * benchmark databases, the Table IV machine models, the input-set
 * groups and the synthetic score database.  Holding the data by value
 * lets tests corrupt a single field of a copy and assert that exactly
 * one rule fires with exactly its diagnostic code.
 */

#ifndef SPECLENS_LINT_RULE_H
#define SPECLENS_LINT_RULE_H

#include <cstdint>
#include <string>
#include <vector>

#include "lint/diagnostics.h"
#include "suites/benchmark_info.h"
#include "suites/input_sets.h"
#include "suites/score_database.h"
#include "uarch/machine.h"

namespace speclens {
namespace lint {

/** Everything a lint run inspects. */
struct LintContext
{
    std::vector<suites::BenchmarkInfo> cpu2017;
    std::vector<suites::BenchmarkInfo> cpu2006;
    std::vector<suites::BenchmarkInfo> emerging;
    std::vector<uarch::MachineConfig> machines;

    /** INT + FP input-set groups (Figs. 7-8). */
    std::vector<suites::InputSetGroup> input_groups;

    /** Synthetic published-results database (Section IV-B). */
    suites::ScoreDatabase scores;

    /**
     * When true, simulation-backed checks run too: each CPU2017
     * benchmark is measured on the simulated Skylake and its derived
     * metrics are checked against the Table I/II envelopes.  Slower
     * (43 short simulations) but catches calibration drift that no
     * purely structural check can see.
     */
    bool deep = false;

    /** Simulation window for the deep checks. */
    std::uint64_t instructions = 120'000;
    std::uint64_t warmup = 30'000;

    /** Worker threads for the deep checks; 0 = one per hardware thread. */
    std::size_t jobs = 0;

    /**
     * Artifact-store directory for the SL016 store-integrity checks
     * and the SL018/SL019/SL022-SL024 artifact re-audit rules; empty
     * (the default) skips them with an info note.
     */
    std::string store_dir;

    /**
     * Directory holding committed BENCH_<pr>.json trajectory artifacts
     * for the SL020/SL021 trajectory rules; empty skips them.
     */
    std::string bench_dir;

    /** All benchmarks of all databases, 2017 first. */
    std::vector<const suites::BenchmarkInfo *> allBenchmarks() const;
};

/** Context loaded with the shipped suites, machines and databases. */
LintContext shippedContext();

/** One verification rule. */
class Rule
{
  public:
    virtual ~Rule() = default;

    /** Stable diagnostic code ("SL001"). */
    virtual std::string code() const = 0;

    /** Short kebab-case name ("mix-range"). */
    virtual std::string name() const = 0;

    /** One-line description of what the rule verifies. */
    virtual std::string description() const = 0;

    /** Append findings for @p context to @p out. */
    virtual void run(const LintContext &context,
                     std::vector<Diagnostic> &out) const = 0;
};

} // namespace lint
} // namespace speclens

#endif // SPECLENS_LINT_RULE_H
