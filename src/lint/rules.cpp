/**
 * @file
 * Shipped lint rules.
 *
 * Each rule walks one slice of the calibration data (workload models,
 * machine configurations, cross-reference tables) and reports findings
 * under its stable code.  Thresholds encode either hard physical
 * constraints (probabilities, monotone hierarchies) or the published
 * envelopes of the paper's Tables I/II.
 */

#include "rules.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "core/artifact_store.h"
#include "core/characterization.h"
#include "core/perf_trajectory.h"
#include "obs/export.h"
#include "obs/manifest.h"
#include "stats/normalize.h"
#include "suites/emerging.h"
#include "suites/input_sets.h"
#include "suites/machines.h"
#include "suites/spec2006.h"
#include "suites/spec2017.h"

namespace speclens {
namespace lint {

namespace {

std::string
num(double v)
{
    std::ostringstream out;
    out << v;
    return out.str();
}

bool
inUnit(double v)
{
    return std::isfinite(v) && v >= 0.0 && v <= 1.0;
}

bool
isPowerOfTwo(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Shared emit helper bound to one rule's code. */
class RuleBase : public Rule
{
  protected:
    void
    emit(std::vector<Diagnostic> &out, Severity severity,
         std::string location, std::string message,
         std::string fix_hint = "") const
    {
        out.push_back(Diagnostic{code(), severity, std::move(location),
                                 std::move(message),
                                 std::move(fix_hint)});
    }

    void
    error(std::vector<Diagnostic> &out, std::string location,
          std::string message, std::string fix_hint = "") const
    {
        emit(out, Severity::Error, std::move(location),
             std::move(message), std::move(fix_hint));
    }
};

// ====================================================================
// Workload-model rules (SL001-SL006): run over every benchmark of
// every database, including input-set variants where applicable.
// ====================================================================

class MixRangeRule final : public RuleBase
{
  public:
    std::string code() const override { return "SL001"; }
    std::string name() const override { return "mix-range"; }
    std::string
    description() const override
    {
        return "instruction-mix fractions lie in [0,1] and leave a "
               "non-negative integer-ALU remainder";
    }

    void
    run(const LintContext &context,
        std::vector<Diagnostic> &out) const override
    {
        for (const suites::BenchmarkInfo *b : context.allBenchmarks()) {
            const trace::InstructionMix &mix = b->profile.mix;
            const struct
            {
                const char *field;
                double value;
            } fields[] = {
                {"mix.load", mix.load},     {"mix.store", mix.store},
                {"mix.branch", mix.branch}, {"mix.fp", mix.fp},
                {"mix.simd", mix.simd},
            };
            for (const auto &f : fields) {
                if (!inUnit(f.value)) {
                    error(out, b->name + "/" + f.field,
                          "mix fraction is " + num(f.value) +
                              ", outside [0, 1]",
                          "Table I percentages divided by 100 must be "
                          "probabilities");
                }
            }
            if (std::isfinite(mix.remainder()) &&
                mix.remainder() < 0.0) {
                error(out, b->name + "/mix",
                      "mix fractions sum to " +
                          num(1.0 - mix.remainder()) +
                          " > 1: no room for integer-ALU ops",
                      "load+store+branch+fp+simd must stay <= 1");
            }
        }
    }
};

class MixSumRule final : public RuleBase
{
  public:
    std::string code() const override { return "SL002"; }
    std::string name() const override { return "mix-sum"; }
    std::string
    description() const override
    {
        return "working-set mixture weights are positive and sum to 1 "
               "within tolerance";
    }

    void
    run(const LintContext &context,
        std::vector<Diagnostic> &out) const override
    {
        // The tlb_stress knob deliberately inflates the vast-set
        // weight by up to (1 + stress); vast weights are <= 0.013, so
        // a 2% tolerance accepts every legitimate preset while
        // catching genuinely broken mixtures.
        constexpr double kTolerance = 0.02;
        for (const suites::BenchmarkInfo *b : context.allBenchmarks()) {
            double total = 0.0;
            bool weights_ok = true;
            for (std::size_t i = 0; i < b->profile.memory.data.size();
                 ++i) {
                double w = b->profile.memory.data[i].weight;
                if (!std::isfinite(w) || w <= 0.0) {
                    error(out,
                          b->name + "/memory.data[" +
                              std::to_string(i) + "].weight",
                          "working-set weight is " + num(w),
                          "every mixture component needs a positive "
                          "weight");
                    weights_ok = false;
                }
                total += w;
            }
            if (weights_ok &&
                std::fabs(total - 1.0) > kTolerance) {
                error(out, b->name + "/memory.data",
                      "working-set weights sum to " + num(total) +
                          ", expected 1 within " + num(kTolerance),
                      "renormalise the dataPreset() mixture row");
            }
        }
    }
};

class CpiComponentsRule final : public RuleBase
{
  public:
    std::string code() const override { return "SL003"; }
    std::string name() const override { return "cpi-components"; }
    std::string
    description() const override
    {
        return "CPI components are non-negative, MLP >= 1 and the "
               "instruction count is positive";
    }

    void
    run(const LintContext &context,
        std::vector<Diagnostic> &out) const override
    {
        for (const suites::BenchmarkInfo *b : context.allBenchmarks()) {
            const trace::ExecutionModel &e = b->profile.exec;
            if (!std::isfinite(e.base_cpi) || e.base_cpi <= 0.0)
                error(out, b->name + "/exec.base_cpi",
                      "base CPI is " + num(e.base_cpi) +
                          ", must be positive",
                      "every instruction costs at least issue "
                      "bandwidth");
            if (!std::isfinite(e.dependency_cpi) ||
                e.dependency_cpi < 0.0)
                error(out, b->name + "/exec.dependency_cpi",
                      "dependency CPI is " + num(e.dependency_cpi) +
                          ", must be >= 0");
            if (!std::isfinite(e.mlp) || e.mlp < 1.0)
                error(out, b->name + "/exec.mlp",
                      "MLP divisor is " + num(e.mlp) +
                          ", must be >= 1",
                      "1 means fully serialised misses; below 1 would "
                      "amplify penalties");
            if (!inUnit(e.kernel_fraction))
                error(out, b->name + "/exec.kernel_fraction",
                      "kernel fraction is " + num(e.kernel_fraction) +
                          ", outside [0, 1]");
            double icount = b->profile.dynamic_instructions_billions;
            if (!std::isfinite(icount) || icount <= 0.0)
                error(out, b->name + "/dynamic_instructions_billions",
                      "instruction count is " + num(icount) +
                          " billion, must be positive");
        }
    }
};

class WorkingSetShapeRule final : public RuleBase
{
  public:
    std::string code() const override { return "SL004"; }
    std::string name() const override { return "working-set-shape"; }
    std::string
    description() const override
    {
        return "working-set sizes increase hot->vast and strides are "
               "line-granular";
    }

    void
    run(const LintContext &context,
        std::vector<Diagnostic> &out) const override
    {
        for (const suites::BenchmarkInfo *b : context.allBenchmarks()) {
            const auto &data = b->profile.memory.data;
            for (std::size_t i = 0; i < data.size(); ++i) {
                std::string loc = b->name + "/memory.data[" +
                                  std::to_string(i) + "]";
                if (!std::isfinite(data[i].bytes) ||
                    data[i].bytes < 64.0)
                    error(out, loc + ".bytes",
                          "footprint is " + num(data[i].bytes) +
                              " bytes, below one cache line");
                if (!std::isfinite(data[i].stride_bytes) ||
                    data[i].stride_bytes < 64.0)
                    error(out, loc + ".stride_bytes",
                          "stride is " + num(data[i].stride_bytes) +
                              " bytes, below one cache line");
                else if (data[i].bytes < data[i].stride_bytes)
                    error(out, loc,
                          "footprint " + num(data[i].bytes) +
                              " is smaller than its stride " +
                              num(data[i].stride_bytes),
                          "a set must contain at least one element");
                if (!inUnit(data[i].sequential))
                    error(out, loc + ".sequential",
                          "sequential fraction is " +
                              num(data[i].sequential) +
                              ", outside [0, 1]");
                if (i > 0 && data[i].bytes <= data[i - 1].bytes)
                    error(out, loc + ".bytes",
                          "set sizes must increase hot -> vast, but " +
                              num(data[i].bytes) + " <= " +
                              num(data[i - 1].bytes),
                          "the mixture is ordered by the cache level "
                          "that captures each set");
            }
        }
    }
};

class CodeModelRule final : public RuleBase
{
  public:
    std::string code() const override { return "SL005"; }
    std::string name() const override { return "code-model"; }
    std::string
    description() const override
    {
        return "hot code fits inside the code footprint and code "
               "locality is a probability";
    }

    void
    run(const LintContext &context,
        std::vector<Diagnostic> &out) const override
    {
        for (const suites::BenchmarkInfo *b : context.allBenchmarks()) {
            const trace::MemoryModel &m = b->profile.memory;
            if (!std::isfinite(m.code_bytes) || m.code_bytes < 64.0)
                error(out, b->name + "/memory.code_bytes",
                      "code footprint is " + num(m.code_bytes) +
                          " bytes, below one cache line");
            if (!std::isfinite(m.hot_code_bytes) ||
                m.hot_code_bytes < 64.0)
                error(out, b->name + "/memory.hot_code_bytes",
                      "hot code region is " + num(m.hot_code_bytes) +
                          " bytes, below one cache line");
            else if (m.hot_code_bytes > m.code_bytes)
                error(out, b->name + "/memory.hot_code_bytes",
                      "hot code region (" + num(m.hot_code_bytes) +
                          " bytes) exceeds the code footprint (" +
                          num(m.code_bytes) + " bytes)",
                      "the hot loop nest is a subset of the static "
                      "code");
            if (!inUnit(m.code_locality))
                error(out, b->name + "/memory.code_locality",
                      "code locality is " + num(m.code_locality) +
                          ", outside [0, 1]");
        }
    }
};

class BranchModelRule final : public RuleBase
{
  public:
    std::string code() const override { return "SL006"; }
    std::string name() const override { return "branch-model"; }
    std::string
    description() const override
    {
        return "branch-population fractions are probabilities and the "
               "static population is sane";
    }

    void
    run(const LintContext &context,
        std::vector<Diagnostic> &out) const override
    {
        for (const suites::BenchmarkInfo *b : context.allBenchmarks()) {
            const trace::BranchModel &br = b->profile.branch;
            if (br.static_branches == 0 ||
                br.static_branches > (1u << 20))
                error(out, b->name + "/branch.static_branches",
                      "static branch population is " +
                          std::to_string(br.static_branches),
                      "expected between 1 and 2^20 static branches");
            const struct
            {
                const char *field;
                double value;
            } fields[] = {
                {"branch.taken_fraction", br.taken_fraction},
                {"branch.biased_fraction", br.biased_fraction},
                {"branch.patterned_fraction", br.patterned_fraction},
            };
            for (const auto &f : fields)
                if (!inUnit(f.value))
                    error(out, b->name + "/" + f.field,
                          std::string(f.field) + " is " + num(f.value) +
                              ", outside [0, 1]");
        }
    }
};

// ====================================================================
// Machine rules (SL007-SL011): the seven Table IV configurations.
// ====================================================================

class CacheMonotonicityRule final : public RuleBase
{
  public:
    std::string code() const override { return "SL007"; }
    std::string name() const override { return "cache-monotonic"; }
    std::string
    description() const override
    {
        return "cache capacity and visible latency grow with the "
               "hierarchy level";
    }

    void
    run(const LintContext &context,
        std::vector<Diagnostic> &out) const override
    {
        for (const uarch::MachineConfig &m : context.machines) {
            const std::string loc = "machine:" + m.short_name;
            const uarch::CacheHierarchyConfig &c = m.caches;
            if (c.l2.size_bytes < c.l1d.size_bytes ||
                c.l2.size_bytes < c.l1i.size_bytes)
                error(out, loc + "/caches.l2",
                      "L2 (" + num(double(c.l2.size_bytes)) +
                          " bytes) is smaller than an L1",
                      "capacity must not shrink with level");
            if (c.l3 && c.l3->size_bytes <= c.l2.size_bytes)
                error(out, loc + "/caches.l3",
                      "L3 (" + num(double(c.l3->size_bytes)) +
                          " bytes) is not larger than L2 (" +
                          num(double(c.l2.size_bytes)) + " bytes)",
                      "drop the level instead of shrinking it");
            const std::uint32_t line = c.l1d.line_bytes;
            for (const uarch::CacheConfig *cache :
                 {&c.l1i, &c.l2, c.l3 ? &*c.l3 : nullptr}) {
                if (cache && cache->line_bytes != line)
                    error(out, loc + "/caches." + cache->name,
                          "line size " +
                              std::to_string(cache->line_bytes) +
                              " differs from L1D's " +
                              std::to_string(line),
                          "mixed line sizes break inclusive fills");
            }

            const uarch::LatencyModel &lat = m.latencies;
            if (!(lat.l2_hit_cycles > 0.0 &&
                  lat.l3_hit_cycles > lat.l2_hit_cycles &&
                  lat.memory_cycles > lat.l3_hit_cycles))
                error(out, loc + "/latencies",
                      "visible latencies must increase with depth: "
                      "L2 " + num(lat.l2_hit_cycles) + ", L3 " +
                          num(lat.l3_hit_cycles) + ", memory " +
                          num(lat.memory_cycles));
            if (lat.mispredict_penalty <= 0.0 ||
                lat.icache_l2_penalty <= 0.0 ||
                lat.l2tlb_hit_cycles <= 0.0 ||
                lat.page_walk_cycles <= lat.l2tlb_hit_cycles)
                error(out, loc + "/latencies",
                      "front-end and TLB penalties must be positive "
                      "and a page walk must cost more than an L2 TLB "
                      "hit");
        }
    }
};

class CacheGeometryRule final : public RuleBase
{
  public:
    std::string code() const override { return "SL008"; }
    std::string name() const override { return "cache-geometry"; }
    std::string
    description() const override
    {
        return "every cache has a power-of-two line size and a "
               "geometry its ways divide evenly";
    }

    void
    run(const LintContext &context,
        std::vector<Diagnostic> &out) const override
    {
        for (const uarch::MachineConfig &m : context.machines) {
            const uarch::CacheHierarchyConfig &c = m.caches;
            for (const uarch::CacheConfig *cache :
                 {&c.l1i, &c.l1d, &c.l2, c.l3 ? &*c.l3 : nullptr}) {
                if (!cache)
                    continue;
                checkCache(out, m.short_name, *cache);
            }
        }
    }

  private:
    void
    checkCache(std::vector<Diagnostic> &out,
               const std::string &machine,
               const uarch::CacheConfig &cache) const
    {
        const std::string loc =
            "machine:" + machine + "/caches." + cache.name;
        if (!isPowerOfTwo(cache.line_bytes) || cache.line_bytes < 16 ||
            cache.line_bytes > 256) {
            error(out, loc,
                  "line size " + std::to_string(cache.line_bytes) +
                      " is not a power of two in [16, 256]");
            return;
        }
        if (cache.associativity == 0) {
            error(out, loc, "associativity is zero");
            return;
        }
        std::uint64_t way_bytes =
            std::uint64_t(cache.line_bytes) * cache.associativity;
        if (cache.size_bytes == 0 ||
            cache.size_bytes % way_bytes != 0)
            error(out, loc,
                  "capacity " + std::to_string(cache.size_bytes) +
                      " is not a multiple of line size x ways (" +
                      std::to_string(way_bytes) + ")",
                  "sets() would truncate and silently drop capacity");
        else if (cache.size_bytes / way_bytes == 0)
            error(out, loc, "geometry yields zero sets");
        if (std::uint64_t(cache.associativity) * cache.line_bytes >
            cache.size_bytes)
            error(out, loc,
                  "more ways than lines: associativity " +
                      std::to_string(cache.associativity) +
                      " exceeds capacity / line size");
    }
};

class TlbConfigRule final : public RuleBase
{
  public:
    std::string code() const override { return "SL009"; }
    std::string name() const override { return "tlb-config"; }
    std::string
    description() const override
    {
        return "TLB entries/ways/page sizes are sane and a shared L2 "
               "TLB covers the L1 TLBs";
    }

    void
    run(const LintContext &context,
        std::vector<Diagnostic> &out) const override
    {
        for (const uarch::MachineConfig &m : context.machines) {
            const uarch::TlbHierarchyConfig &t = m.tlbs;
            checkTlb(out, m.short_name, t.itlb);
            checkTlb(out, m.short_name, t.dtlb);
            if (!t.l2tlb)
                continue;
            checkTlb(out, m.short_name, *t.l2tlb);
            const std::string loc =
                "machine:" + m.short_name + "/tlbs." + t.l2tlb->name;
            if (t.l2tlb->entries < t.itlb.entries ||
                t.l2tlb->entries < t.dtlb.entries)
                error(out, loc,
                      "second-level TLB (" +
                          std::to_string(t.l2tlb->entries) +
                          " entries) is smaller than a first-level "
                          "TLB",
                      "a victim/second-level TLB must cover what the "
                      "L1 TLBs hold");
            if (t.l2tlb->page_bytes != t.itlb.page_bytes ||
                t.l2tlb->page_bytes != t.dtlb.page_bytes)
                error(out, loc,
                      "page size differs between TLB levels");
        }
    }

  private:
    void
    checkTlb(std::vector<Diagnostic> &out, const std::string &machine,
             const uarch::TlbConfig &tlb) const
    {
        const std::string loc =
            "machine:" + machine + "/tlbs." + tlb.name;
        if (tlb.entries == 0) {
            error(out, loc, "TLB has zero entries");
            return;
        }
        if (tlb.associativity == 0 ||
            tlb.associativity > tlb.entries)
            error(out, loc,
                  "associativity " +
                      std::to_string(tlb.associativity) +
                      " is outside [1, entries=" +
                      std::to_string(tlb.entries) + "]",
                  "use entries for a fully associative TLB");
        else if (tlb.entries % tlb.associativity != 0)
            error(out, loc,
                  "entries " + std::to_string(tlb.entries) +
                      " are not a multiple of associativity " +
                      std::to_string(tlb.associativity));
        if (!isPowerOfTwo(tlb.page_bytes) || tlb.page_bytes < 4096)
            error(out, loc,
                  "page size " + std::to_string(tlb.page_bytes) +
                      " is not a power of two >= 4096");
    }
};

class MachineConfigRule final : public RuleBase
{
  public:
    std::string code() const override { return "SL010"; }
    std::string name() const override { return "machine-config"; }
    std::string
    description() const override
    {
        return "frequency, predictor size and power coefficients are "
               "in plausible hardware ranges";
    }

    void
    run(const LintContext &context,
        std::vector<Diagnostic> &out) const override
    {
        std::set<std::string> short_names;
        for (const uarch::MachineConfig &m : context.machines) {
            const std::string loc = "machine:" + m.short_name;
            if (m.short_name.empty() || m.name.empty())
                error(out, loc, "machine has an empty name");
            else if (!short_names.insert(m.short_name).second)
                error(out, loc,
                      "duplicate machine short name '" + m.short_name +
                          "'",
                      "short names key the per-machine feature "
                      "columns");
            if (!std::isfinite(m.frequency_ghz) ||
                m.frequency_ghz < 0.5 || m.frequency_ghz > 6.0)
                error(out, loc + "/frequency_ghz",
                      "clock of " + num(m.frequency_ghz) +
                          " GHz is outside the plausible [0.5, 6] "
                          "range");
            if (m.predictor_size_log2 < 8 ||
                m.predictor_size_log2 > 20)
                error(out, loc + "/predictor_size_log2",
                      "predictor table of 2^" +
                          std::to_string(m.predictor_size_log2) +
                          " entries is outside [2^8, 2^20]");
            const uarch::PowerModelConfig &p = m.power;
            if (p.core_static_watts <= 0.0 ||
                p.energy_per_instruction_nj <= 0.0 ||
                p.llc_static_watts <= 0.0 ||
                p.dram_static_watts <= 0.0 ||
                p.llc_access_energy_nj <= 0.0 ||
                p.dram_access_energy_nj <= 0.0)
                error(out, loc + "/power",
                      "static power and per-event energies must be "
                      "positive");
            if (std::fabs(p.frequency_ghz - m.frequency_ghz) > 1e-9)
                error(out, loc + "/power.frequency_ghz",
                      "power-model clock (" + num(p.frequency_ghz) +
                          " GHz) disagrees with the machine clock (" +
                          num(m.frequency_ghz) + " GHz)",
                      "set power.frequency_ghz = frequency_ghz when "
                      "building the machine");
        }
    }
};

class TransformRule final : public RuleBase
{
  public:
    std::string code() const override { return "SL011"; }
    std::string name() const override { return "transform"; }
    std::string
    description() const override
    {
        return "ISA/compiler transforms stay in range and keep every "
               "CPU2017 mix valid";
    }

    void
    run(const LintContext &context,
        std::vector<Diagnostic> &out) const override
    {
        for (const uarch::MachineConfig &m : context.machines) {
            const std::string loc =
                "machine:" + m.short_name + "/transform";
            const uarch::WorkloadTransform &t = m.transform;
            const struct
            {
                const char *field;
                double value;
            } scales[] = {
                {"memory_mix_scale", t.memory_mix_scale},
                {"branch_mix_scale", t.branch_mix_scale},
                {"code_scale", t.code_scale},
            };
            for (const auto &s : scales)
                if (!std::isfinite(s.value) || s.value < 0.5 ||
                    s.value > 2.0)
                    error(out, loc + "." + s.field,
                          std::string(s.field) + " is " +
                              num(s.value) +
                              ", outside the plausible [0.5, 2] "
                              "range",
                          "ISA/compiler effects perturb mixes by tens "
                          "of percent, not orders of magnitude");
            if (!std::isfinite(t.mix_jitter) || t.mix_jitter < 0.0 ||
                t.mix_jitter > 0.1)
                error(out, loc + ".mix_jitter",
                      "mix jitter of " + num(t.mix_jitter) +
                          " is outside [0, 0.1]",
                      "jitter models submitter-to-submitter compiler "
                      "noise of a few percent");

            // The transform must keep every calibrated mix a valid
            // probability mix, or the trace generator downstream
            // samples from garbage.
            for (const suites::BenchmarkInfo &b : context.cpu2017) {
                trace::WorkloadProfile transformed =
                    uarch::transformForMachine(b.profile, m);
                if (!transformed.mix.valid())
                    error(out, b.name + "@" + m.short_name,
                          "machine transform turns the mix invalid "
                          "(sum > 1 or negative fraction)",
                          "shrink the transform scales");
            }
        }
    }
};

// ====================================================================
// Cross-reference rules (SL012-SL014).
// ====================================================================

class CrossReferenceRule final : public RuleBase
{
  public:
    std::string code() const override { return "SL012"; }
    std::string name() const override { return "cross-reference"; }
    std::string
    description() const override
    {
        return "rate/speed partner links resolve symmetrically and "
               "names/ids/category counts match the suite";
    }

    void
    run(const LintContext &context,
        std::vector<Diagnostic> &out) const override
    {
        // Name uniqueness across all databases: analyses key caches
        // and feature rows by name.
        std::set<std::string> names;
        for (const suites::BenchmarkInfo *b : context.allBenchmarks())
            if (!names.insert(b->name).second)
                error(out, b->name,
                      "duplicate benchmark name across databases",
                      "names key the measurement cache and feature "
                      "rows");

        std::set<int> ids;
        std::size_t per_category[4] = {0, 0, 0, 0};
        for (const suites::BenchmarkInfo &b : context.cpu2017) {
            if (b.id != 0 && !ids.insert(b.id).second)
                error(out, b.name,
                      "duplicate SPEC id " + std::to_string(b.id));
            switch (b.category) {
              case suites::Category::SpeedInt: ++per_category[0]; break;
              case suites::Category::RateInt: ++per_category[1]; break;
              case suites::Category::SpeedFp: ++per_category[2]; break;
              case suites::Category::RateFp: ++per_category[3]; break;
              default:
                error(out, b.name,
                      "CPU2017 benchmark carries a non-CPU2017 "
                      "category");
            }
            checkPartner(out, context, b);
        }

        // Table I composition: 10 speed INT, 10 rate INT, 10 speed
        // FP, 13 rate FP.
        const struct
        {
            const char *label;
            std::size_t expected;
            std::size_t actual;
        } counts[] = {
            {"speed INT", 10, per_category[0]},
            {"rate INT", 10, per_category[1]},
            {"speed FP", 10, per_category[2]},
            {"rate FP", 13, per_category[3]},
        };
        for (const auto &c : counts)
            if (c.actual != c.expected)
                error(out, "cpu2017",
                      std::string(c.label) + " has " +
                          std::to_string(c.actual) +
                          " benchmarks, Table I lists " +
                          std::to_string(c.expected));
    }

  private:
    void
    checkPartner(std::vector<Diagnostic> &out,
                 const LintContext &context,
                 const suites::BenchmarkInfo &b) const
    {
        if (b.partner.empty())
            return;
        const suites::BenchmarkInfo *partner = nullptr;
        for (const suites::BenchmarkInfo &other : context.cpu2017)
            if (other.name == b.partner)
                partner = &other;
        if (!partner) {
            error(out, b.name + "/partner",
                  "rate/speed partner '" + b.partner +
                      "' does not resolve in the CPU2017 database");
            return;
        }
        if (partner->partner != b.name)
            error(out, b.name + "/partner",
                  "partnership is not symmetric: " + partner->name +
                      " points at '" + partner->partner + "'");
        bool b_speed = suites::isSpeedCategory(b.category);
        bool p_speed = suites::isSpeedCategory(partner->category);
        bool b_fp = suites::isFpCategory(b.category);
        bool p_fp = suites::isFpCategory(partner->category);
        if (b_speed == p_speed || b_fp != p_fp)
            error(out, b.name + "/partner",
                  "rate/speed pair categories disagree (" +
                      suites::categoryName(b.category) + " vs " +
                      suites::categoryName(partner->category) + ")",
                  "a speed benchmark pairs with the rate benchmark "
                  "of the same INT/FP class");
    }
};

class InputSetRule final : public RuleBase
{
  public:
    std::string code() const override { return "SL013"; }
    std::string name() const override { return "input-sets"; }
    std::string
    description() const override
    {
        return "input-set groups resolve to CPU2017 benchmarks with "
               "the declared variant counts and valid models";
    }

    void
    run(const LintContext &context,
        std::vector<Diagnostic> &out) const override
    {
        for (const suites::InputSetGroup &group :
             context.input_groups) {
            const std::string &base = group.benchmark.name;
            bool resolves = false;
            for (const suites::BenchmarkInfo &b : context.cpu2017)
                if (b.name == base)
                    resolves = true;
            if (!resolves)
                error(out, base,
                      "input-set group benchmark does not resolve in "
                      "the CPU2017 database");

            int declared = suites::inputSetCount(base);
            if (group.inputs.size() !=
                static_cast<std::size_t>(declared))
                error(out, base + "/inputs",
                      "group carries " +
                          std::to_string(group.inputs.size()) +
                          " variants but inputSetCount() declares " +
                          std::to_string(declared));

            for (std::size_t k = 0; k < group.inputs.size(); ++k) {
                const suites::BenchmarkInfo &v = group.inputs[k];
                std::string expected =
                    group.inputs.size() == 1
                        ? base
                        : base + "#" + std::to_string(k + 1);
                if (v.name != expected)
                    error(out, v.name,
                          "variant name does not follow the '" +
                              base + "#k' convention (expected " +
                              expected + ")");
                try {
                    v.profile.validate();
                } catch (const std::invalid_argument &ex) {
                    error(out, v.name,
                          std::string("variant model is invalid: ") +
                              ex.what());
                }
            }
        }
    }
};

class ScoreDatabaseRule final : public RuleBase
{
  public:
    std::string code() const override { return "SL014"; }
    std::string name() const override { return "score-database"; }
    std::string
    description() const override
    {
        return "every (system, benchmark) speedup and suite score is "
               "finite and positive";
    }

    void
    run(const LintContext &context,
        std::vector<Diagnostic> &out) const override
    {
        const suites::Category categories[] = {
            suites::Category::SpeedInt, suites::Category::RateInt,
            suites::Category::SpeedFp, suites::Category::RateFp};
        for (suites::Category category : categories) {
            const auto &systems =
                context.scores.systemsFor(category);
            if (systems.empty()) {
                error(out,
                      "scores/" + suites::categoryName(category),
                      "no commercial systems for the category",
                      "validateSubset() divides by the system count");
                continue;
            }
            for (const suites::CommercialSystem &system : systems) {
                if (!(system.noise_sigma >= 0.0))
                    error(out, "scores/" + system.name,
                          "submission noise sigma is " +
                              num(system.noise_sigma));
                for (const suites::BenchmarkInfo &b :
                     context.cpu2017) {
                    if (b.category != category)
                        continue;
                    double s = context.scores.speedup(system, b);
                    if (!std::isfinite(s) || s <= 0.0)
                        error(out,
                              "scores/" + system.name + "/" + b.name,
                              "speedup is " + num(s) +
                                  ", must be finite and positive",
                              "check the benchmark's traits "
                              "(deriveTraits) for NaNs");
                }
            }
        }
    }
};

// ====================================================================
// Paper-bound rule (SL015).
// ====================================================================

class PaperBoundsRule final : public RuleBase
{
  public:
    std::string code() const override { return "SL015"; }
    std::string name() const override { return "paper-bounds"; }
    std::string
    description() const override
    {
        return "calibrated and simulated metrics stay inside the "
               "Table I/II envelopes";
    }

    void
    run(const LintContext &context,
        std::vector<Diagnostic> &out) const override
    {
        for (const suites::BenchmarkInfo &b : context.cpu2017) {
            // Table I CPIs on Skylake span 0.31 (x264) to 1.39
            // (omnetpp); anything outside [0.2, 3] is a typo.
            if (!std::isfinite(b.published_cpi) ||
                b.published_cpi < 0.2 || b.published_cpi > 3.0)
                error(out, b.name + "/published_cpi",
                      "published Skylake CPI of " +
                          num(b.published_cpi) +
                          " is outside the Table I envelope "
                          "[0.2, 3]");
            else {
                double fixed = b.profile.exec.base_cpi +
                               b.profile.exec.dependency_cpi;
                if (fixed > b.published_cpi + 1e-9)
                    error(out, b.name + "/exec",
                          "base + dependency CPI (" + num(fixed) +
                              ") exceeds the published total CPI (" +
                              num(b.published_cpi) + ")",
                          "leave headroom for the simulated stall "
                          "components");
            }
            // Table I mixes: loads up to ~50%, stores up to ~25%,
            // branches up to ~33% (xalancbmk).
            const trace::InstructionMix &mix = b.profile.mix;
            if (mix.load > 0.55 || mix.store > 0.30 ||
                mix.branch > 0.40)
                error(out, b.name + "/mix",
                      "mix exceeds the Table I envelope (load " +
                          num(mix.load) + ", store " +
                          num(mix.store) + ", branch " +
                          num(mix.branch) + ")");
        }

        if (!context.deep) {
            emit(out, Severity::Info, "cpu2017",
                 "simulation-backed Table II checks skipped "
                 "(deep checks disabled)");
            return;
        }
        deepChecks(context, out);
    }

  private:
    void
    deepChecks(const LintContext &context,
               std::vector<Diagnostic> &out) const
    {
        // Measure every CPU2017 benchmark on the simulated Skylake
        // and hold the derived metrics against the Table II envelope,
        // widened for short-window noise.  A benchmark escaping these
        // bounds means its preset drifted out of calibration even
        // though every structural check passes.
        core::CharacterizationConfig config;
        config.instructions = context.instructions;
        config.warmup = context.warmup;
        config.jobs = context.jobs;
        core::Characterizer characterizer(
            {suites::skylakeMachine()}, config);
        characterizer.prepare(context.cpu2017);

        for (const suites::BenchmarkInfo &b : context.cpu2017) {
            const uarch::SimulationResult &sim =
                characterizer.simulation(b, 0);
            core::MetricVector mv = core::extractMetrics(sim);
            const std::string loc = b.name + "@skylake";

            double cpi = sim.cpi();
            if (!std::isfinite(cpi) || cpi <= 0.0) {
                error(out, loc,
                      "simulated CPI is " + num(cpi),
                      "the CPI stack must sum to a positive total");
                continue;
            }
            if (b.published_cpi > 0.0) {
                double ratio = cpi / b.published_cpi;
                if (ratio < 0.25 || ratio > 4.0)
                    error(out, loc,
                          "simulated CPI " + num(cpi) + " is " +
                              num(ratio) +
                              "x the published Table I CPI " +
                              num(b.published_cpi),
                          "recalibrate the preset's locality / CPI "
                          "knobs");
            }

            const struct
            {
                core::Metric metric;
                double bound;
                const char *label;
            } envelope[] = {
                // Table II tops out at 98.4 L1D / 11.6 L1I / 5 L3 /
                // 8.4 branch MPKI; the margins absorb window noise.
                {core::Metric::L1dMpki, 160.0, "L1D MPKI"},
                {core::Metric::L1iMpki, 30.0, "L1I MPKI"},
                {core::Metric::L3Mpki, 15.0, "L3 MPKI"},
                {core::Metric::BranchMpki, 15.0, "branch MPKI"},
            };
            for (const auto &e : envelope) {
                double v = mv.get(e.metric);
                if (!std::isfinite(v) || v < 0.0 || v > e.bound)
                    error(out, loc,
                          std::string(e.label) + " of " + num(v) +
                              " escapes the Table II envelope "
                              "(<= " + num(e.bound) + ")",
                          "CPU2017 shows strong level-by-level "
                          "filtering; check the locality preset");
            }
        }
    }
};

// ====================================================================
// Store-integrity rule (SL016).
// ====================================================================

class StoreIntegrityRule final : public RuleBase
{
  public:
    std::string code() const override { return "SL016"; }
    std::string name() const override { return "store-integrity"; }
    std::string
    description() const override
    {
        return "artifact-store entries are checksum-clean and still "
               "re-derivable from the shipped models";
    }

    void
    run(const LintContext &context,
        std::vector<Diagnostic> &out) const override
    {
        if (context.store_dir.empty()) {
            emit(out, Severity::Info, "store",
                 "store integrity skipped (no --store directory "
                 "given)");
            return;
        }

        // Every profile an entry could legitimately describe: the
        // three databases plus the Fig. 7/8 input-set variants.
        std::map<std::string, const trace::WorkloadProfile *> profiles;
        for (const suites::BenchmarkInfo *b : context.allBenchmarks())
            profiles.emplace(b->profile.name, &b->profile);
        for (const suites::InputSetGroup &g : context.input_groups)
            for (const suites::BenchmarkInfo &v : g.inputs)
                profiles.emplace(v.profile.name, &v.profile);

        std::map<std::string, const uarch::MachineConfig *> machines;
        for (const uarch::MachineConfig &m : context.machines)
            machines.emplace(m.name, &m);

        core::CampaignStore store(context.store_dir);
        std::size_t healthy = 0;
        for (const core::StoreEntryInfo &info : store.scan()) {
            const std::string loc = "store/" + info.filename;
            switch (info.status) {
              case core::StoreStatus::Corrupt:
                error(out, loc, "corrupt entry: " + info.detail,
                      "delete it with `speclens campaign invalidate "
                      "stale --store DIR` (it will be recomputed)");
                continue;
              case core::StoreStatus::FingerprintMismatch:
                error(out, loc,
                      "entry does not belong under its file name: " +
                          info.detail,
                      "entries must not be renamed; invalidate stale "
                      "entries and re-run the campaign");
                continue;
              case core::StoreStatus::StaleVersion:
                emit(out, Severity::Warning, loc,
                     "stale entry: " + info.detail,
                     "re-run the campaign to refresh it");
                continue;
              default:
                break;
            }

            // Consistent on disk; now hold it against the shipped
            // models.  Derived workloads (phased ground truths and
            // "@k" phase probes) cannot be re-derived without their
            // derivation parameters, so only their base name is
            // checked.
            std::string base = info.benchmark;
            std::string::size_type at = base.find('@');
            bool derived = info.phases > 0 || at != std::string::npos;
            if (at != std::string::npos)
                base = base.substr(0, at);

            auto machine = machines.find(info.machine);
            auto profile = profiles.find(base);
            if (machine == machines.end() ||
                profile == profiles.end()) {
                emit(out, Severity::Warning, loc,
                     "orphaned entry: " +
                         (machine == machines.end()
                              ? "machine '" + info.machine + "'"
                              : "benchmark '" + base + "'") +
                         " is not a shipped model",
                     "written by an ad-hoc configuration; invalidate "
                     "if unwanted");
                continue;
            }
            if (!derived) {
                uarch::SimulationConfig window;
                window.instructions = info.instructions;
                window.warmup = info.warmup;
                window.seed_salt = info.seed_salt;
                window.apply_machine_transform =
                    info.apply_machine_transform;
                window.prewarm = info.prewarm;
                core::StoreKey expect = core::makeStoreKey(
                    *profile->second, *machine->second, window);
                if (expect.fingerprint != info.fingerprint) {
                    emit(out, Severity::Warning, loc,
                         "stale entry: the shipped model of '" +
                             info.benchmark + "' on '" + info.machine +
                             "' no longer produces this fingerprint",
                         "the model changed since the entry was "
                         "written; invalidate and re-run");
                    continue;
                }
            }
            ++healthy;
        }
        emit(out, Severity::Info, "store",
             std::to_string(healthy) +
                 " healthy entries in " + context.store_dir);
    }
};

// ====================================================================
// Degenerate-feature rule (SL017).
// ====================================================================

class DegenerateFeaturesRule final : public RuleBase
{
  public:
    std::string code() const override { return "SL017"; }
    std::string name() const override { return "degenerate-features"; }
    std::string
    description() const override
    {
        return "every CPU2017 feature column varies across the suite "
               "(zero-variance columns are zeroed by normalization)";
    }

    void
    run(const LintContext &context,
        std::vector<Diagnostic> &out) const override
    {
        if (!context.deep) {
            emit(out, Severity::Info, "features",
                 "degenerate-feature check skipped (deep checks "
                 "disabled)");
            return;
        }

        // The same feature matrix the similarity pipeline consumes:
        // CPU2017 on the simulated Skylake.  zscoreWith() maps a
        // zero-variance column to all-zeros — mathematically forced,
        // but a feature that never varies across 20 benchmarks means
        // the underlying counter model is dead, so it must be
        // surfaced, never silent (that silence was a real bug).
        core::CharacterizationConfig config;
        config.instructions = context.instructions;
        config.warmup = context.warmup;
        config.jobs = context.jobs;
        core::Characterizer characterizer({suites::skylakeMachine()},
                                          config);
        stats::Matrix features =
            characterizer.featureMatrix(context.cpu2017);
        std::vector<std::string> names = characterizer.featureNames();

        stats::NormalizeReport report;
        // Label the columns up front so a degenerate one is reported
        // as its machine.metric feature name, never a bare index.
        report.column_labels = names;
        (void)stats::zscore(features, &report);
        for (std::size_t c : report.degenerate_columns) {
            emit(out, Severity::Warning,
                 "features/" + report.describe(c),
                 "feature column " + report.describe(c) +
                     " has zero variance across CPU2017 and is "
                     "zeroed by normalization",
                 "a counter that never varies usually means a dead "
                 "metric model; recalibrate or drop the metric");
        }
        emit(out, Severity::Info, "features",
             std::to_string(features.cols() -
                            report.degenerate_columns.size()) +
                 " of " + std::to_string(features.cols()) +
                 " feature columns vary across CPU2017");
    }
};

// ====================================================================
// Artifact-lint family (SL018-SL024): structural re-audit of on-disk
// artifacts — store entries, BENCH_<pr>.json trajectory files and the
// run manifest.  These rules re-open what past runs persisted and
// hold it against the same invariants the live simulator satisfies,
// so silent corruption (bad serialization, hand edits, drifted
// constants) cannot survive a lint pass.
// ====================================================================

/** Slurp a whole text file; false when unreadable. */
bool
readTextFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

/**
 * Position of the value of @p key at or after @p from, or npos.
 *
 * The artifact JSON is machine-rendered with a fixed section order,
 * so a quoted-key scan (not a full parser) addresses fields reliably:
 * callers scope nested keys by first locating their section's key.
 */
std::size_t
jsonValuePos(const std::string &text, const std::string &key,
             std::size_t from)
{
    const std::string needle = "\"" + key + "\"";
    std::size_t at = text.find(needle, from);
    if (at == std::string::npos)
        return std::string::npos;
    std::size_t pos = at + needle.size();
    while (pos < text.size() && std::isspace(
                                    static_cast<unsigned char>(text[pos])))
        ++pos;
    if (pos >= text.size() || text[pos] != ':')
        return std::string::npos;
    ++pos;
    while (pos < text.size() && std::isspace(
                                    static_cast<unsigned char>(text[pos])))
        ++pos;
    return pos < text.size() ? pos : std::string::npos;
}

bool
jsonNumber(const std::string &text, const std::string &key, double &out,
           std::size_t from = 0)
{
    std::size_t pos = jsonValuePos(text, key, from);
    if (pos == std::string::npos)
        return false;
    try {
        std::size_t consumed = 0;
        out = std::stod(text.substr(pos, 64), &consumed);
        return consumed > 0;
    } catch (const std::exception &) {
        return false;
    }
}

bool
jsonString(const std::string &text, const std::string &key,
           std::string &out, std::size_t from = 0)
{
    std::size_t pos = jsonValuePos(text, key, from);
    if (pos == std::string::npos || text[pos] != '"')
        return false;
    std::size_t end = text.find('"', pos + 1);
    if (end == std::string::npos)
        return false;
    out = text.substr(pos + 1, end - pos - 1);
    return true;
}

bool
jsonBool(const std::string &text, const std::string &key, bool &out,
         std::size_t from = 0)
{
    std::size_t pos = jsonValuePos(text, key, from);
    if (pos == std::string::npos)
        return false;
    if (text.compare(pos, 4, "true") == 0) {
        out = true;
        return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
        out = false;
        return true;
    }
    return false;
}

bool
isHex16(const std::string &s)
{
    if (s.size() != 16)
        return false;
    for (char c : s)
        if (!std::isxdigit(static_cast<unsigned char>(c)) ||
            std::isupper(static_cast<unsigned char>(c)))
            return false;
    return true;
}

bool
nearRel(double a, double b, double rel)
{
    double scale = std::max(std::abs(a), std::abs(b));
    return std::isfinite(a) && std::isfinite(b) &&
           std::abs(a - b) <= rel * std::max(scale, 1.0);
}

/** Store address reconstructed from a scanned entry's metadata. */
core::StoreKey
keyFromInfo(const core::StoreEntryInfo &info)
{
    core::StoreKey key;
    key.fingerprint = info.fingerprint;
    key.benchmark = info.benchmark;
    key.machine = info.machine;
    key.instructions = info.instructions;
    key.warmup = info.warmup;
    key.seed_salt = info.seed_salt;
    key.apply_machine_transform = info.apply_machine_transform;
    key.prewarm = info.prewarm;
    return key;
}

/** Named access to every PerfCounters event field. */
struct CounterField
{
    const char *name;
    std::uint64_t uarch::PerfCounters::*field;
};

constexpr CounterField kCounterFields[] = {
    {"instructions", &uarch::PerfCounters::instructions},
    {"loads", &uarch::PerfCounters::loads},
    {"stores", &uarch::PerfCounters::stores},
    {"branches", &uarch::PerfCounters::branches},
    {"taken_branches", &uarch::PerfCounters::taken_branches},
    {"fp_ops", &uarch::PerfCounters::fp_ops},
    {"simd_ops", &uarch::PerfCounters::simd_ops},
    {"kernel_instructions", &uarch::PerfCounters::kernel_instructions},
    {"l1d_accesses", &uarch::PerfCounters::l1d_accesses},
    {"l1d_misses", &uarch::PerfCounters::l1d_misses},
    {"l1i_accesses", &uarch::PerfCounters::l1i_accesses},
    {"l1i_misses", &uarch::PerfCounters::l1i_misses},
    {"l2d_accesses", &uarch::PerfCounters::l2d_accesses},
    {"l2d_misses", &uarch::PerfCounters::l2d_misses},
    {"l2i_accesses", &uarch::PerfCounters::l2i_accesses},
    {"l2i_misses", &uarch::PerfCounters::l2i_misses},
    {"l3_accesses", &uarch::PerfCounters::l3_accesses},
    {"l3_misses", &uarch::PerfCounters::l3_misses},
    {"dtlb_accesses", &uarch::PerfCounters::dtlb_accesses},
    {"dtlb_misses", &uarch::PerfCounters::dtlb_misses},
    {"itlb_accesses", &uarch::PerfCounters::itlb_accesses},
    {"itlb_misses", &uarch::PerfCounters::itlb_misses},
    {"l2tlb_misses", &uarch::PerfCounters::l2tlb_misses},
    {"page_walks", &uarch::PerfCounters::page_walks},
    {"branch_mispredictions",
     &uarch::PerfCounters::branch_mispredictions},
};

class StoreResultAuditRule final : public RuleBase
{
  public:
    std::string code() const override { return "SL018"; }
    std::string name() const override { return "store-result-audit"; }
    std::string
    description() const override
    {
        return "deserialized store results satisfy the simulator's "
               "counter accounting identities";
    }

    void
    run(const LintContext &context,
        std::vector<Diagnostic> &out) const override
    {
        if (context.store_dir.empty()) {
            emit(out, Severity::Info, "store",
                 "store result audit skipped (no --store directory "
                 "given)");
            return;
        }
        core::CampaignStore store(context.store_dir);
        std::size_t audited = 0;
        for (const core::StoreEntryInfo &info : store.scan()) {
            if (info.status != core::StoreStatus::Hit)
                continue; // SL016 reports defective entries.
            const std::string loc = "store/" + info.filename;
            core::StoreKey key = keyFromInfo(info);
            if (info.phases == 0) {
                uarch::SimulationResult result;
                if (store.load(key, result) != core::StoreStatus::Hit) {
                    error(out, loc,
                          "entry scanned clean but failed to load",
                          "invalidate the entry and re-run the "
                          "campaign");
                    continue;
                }
                auditResult(loc, result, out);
            } else {
                uarch::PhasedSimulationResult result;
                if (store.loadPhased(key, result) !=
                    core::StoreStatus::Hit) {
                    error(out, loc,
                          "phased entry scanned clean but failed to "
                          "load",
                          "invalidate the entry and re-run the "
                          "campaign");
                    continue;
                }
                auditCounters(loc + "/combined",
                              result.combined_counters, out);
                for (std::size_t i = 0; i < result.per_phase.size();
                     ++i)
                    auditResult(loc + "/phase" + std::to_string(i),
                                result.per_phase[i], out);
            }
            ++audited;
        }
        emit(out, Severity::Info, "store",
             std::to_string(audited) + " entries re-audited in " +
                 context.store_dir);
    }

  private:
    void
    auditCounters(const std::string &loc,
                  const uarch::PerfCounters &c,
                  std::vector<Diagnostic> &out) const
    {
        if (c.instructions == 0) {
            error(out, loc, "stored window retired zero instructions",
                  "an empty measurement window cannot produce the "
                  "paper's rates; invalidate and re-run");
            return;
        }
        if (c.loads + c.stores + c.branches + c.fp_ops + c.simd_ops >
            c.instructions)
            error(out, loc,
                  "instruction classes sum past the retired total",
                  "classes are disjoint; the entry bytes are "
                  "inconsistent");
        if (c.taken_branches > c.branches ||
            c.branch_mispredictions > c.branches)
            error(out, loc,
                  "taken/mispredicted branches exceed retired "
                  "branches");
        if (c.kernel_instructions > c.instructions)
            error(out, loc,
                  "kernel instructions exceed retired instructions");
        const struct
        {
            const char *level;
            std::uint64_t accesses;
            std::uint64_t misses;
        } levels[] = {
            {"l1d", c.l1d_accesses, c.l1d_misses},
            {"l1i", c.l1i_accesses, c.l1i_misses},
            {"l2d", c.l2d_accesses, c.l2d_misses},
            {"l2i", c.l2i_accesses, c.l2i_misses},
            {"l3", c.l3_accesses, c.l3_misses},
            {"dtlb", c.dtlb_accesses, c.dtlb_misses},
            {"itlb", c.itlb_accesses, c.itlb_misses},
        };
        for (const auto &l : levels) {
            if (l.misses > l.accesses)
                error(out, loc + "/" + l.level,
                      "misses (" + std::to_string(l.misses) +
                          ") exceed accesses (" +
                          std::to_string(l.accesses) + ")");
        }
        if (c.l2tlb_misses > c.itlb_misses + c.dtlb_misses)
            error(out, loc,
                  "L2 TLB misses exceed the L1 TLB miss stream that "
                  "feeds them");
        if (c.page_walks != c.l2tlb_misses)
            error(out, loc,
                  "page walks (" + std::to_string(c.page_walks) +
                      ") != L2 TLB misses (" +
                      std::to_string(c.l2tlb_misses) + ")",
                  "every last-level TLB miss walks the page table, "
                  "and nothing else does");
    }

    void
    auditResult(const std::string &loc,
                const uarch::SimulationResult &result,
                std::vector<Diagnostic> &out) const
    {
        auditCounters(loc, result.counters, out);
        if (!(std::isfinite(result.cpi()) && result.cpi() > 0.0))
            error(out, loc,
                  "stored CPI is " + num(result.cpi()) +
                      ", not finite-positive");
        for (double component : result.cpi_stack.components())
            if (!(std::isfinite(component) && component >= 0.0)) {
                error(out, loc,
                      "CPI-stack component is " + num(component) +
                          ", not finite and non-negative");
                break;
            }
        const double rails[] = {result.power.core_watts,
                                result.power.llc_watts,
                                result.power.dram_watts};
        for (double watts : rails)
            if (!(std::isfinite(watts) && watts >= 0.0)) {
                error(out, loc,
                      "power rail is " + num(watts) +
                          " W, not finite and non-negative");
                break;
            }
    }
};

class StoreMetricRangeRule final : public RuleBase
{
  public:
    std::string code() const override { return "SL019"; }
    std::string name() const override { return "store-metric-range"; }
    std::string
    description() const override
    {
        return "stored metrics stay inside physical envelopes and "
               "match the describing machine's topology";
    }

    void
    run(const LintContext &context,
        std::vector<Diagnostic> &out) const override
    {
        if (context.store_dir.empty()) {
            emit(out, Severity::Info, "store",
                 "store metric-range check skipped (no --store "
                 "directory given)");
            return;
        }
        std::map<std::string, const uarch::MachineConfig *> machines;
        for (const uarch::MachineConfig &m : context.machines)
            machines.emplace(m.name, &m);

        core::CampaignStore store(context.store_dir);
        std::size_t checked = 0;
        for (const core::StoreEntryInfo &info : store.scan()) {
            if (info.status != core::StoreStatus::Hit ||
                info.phases != 0)
                continue;
            const std::string loc = "store/" + info.filename;
            uarch::SimulationResult result;
            if (store.load(keyFromInfo(info), result) !=
                core::StoreStatus::Hit)
                continue; // SL018 reports the load failure.
            const uarch::PerfCounters &c = result.counters;
            if (c.instructions == 0)
                continue; // SL018 reports the empty window.

            double ipc = result.ipc();
            if (!(ipc > 0.0 && ipc <= 8.0))
                error(out, loc,
                      "IPC is " + num(ipc) +
                          ", outside the plausible (0, 8] range");
            if (result.cpi() > 100.0)
                error(out, loc,
                      "CPI is " + num(result.cpi()) +
                          ", beyond any modelled stall mix");
            const struct
            {
                const char *metric;
                double value;
            } mpki[] = {
                {"l1d_mpki", c.l1dMpki()},
                {"l1i_mpki", c.l1iMpki()},
                {"l2d_mpki", c.l2dMpki()},
                {"l2i_mpki", c.l2iMpki()},
                {"l3_mpki", c.l3Mpki()},
                {"branch_mpki", c.branchMpki()},
            };
            for (const auto &m : mpki)
                if (!(m.value >= 0.0 && m.value <= 1000.0))
                    error(out, loc,
                          std::string(m.metric) + " is " +
                              num(m.value) +
                              ", outside [0, 1000] (at most one "
                              "event per instruction)");

            // Demand-miss plumbing: each level's access stream is the
            // previous level's miss stream (prefetch fills bypass the
            // demand counters, so this holds with prefetching too).
            if (c.l2d_accesses != c.l1d_misses ||
                c.l2i_accesses != c.l1i_misses)
                error(out, loc,
                      "L2 demand accesses do not equal the L1 miss "
                      "streams that generate them");
            if (c.l3_accesses != c.l2d_misses + c.l2i_misses)
                error(out, loc,
                      "last-level accesses (" +
                          std::to_string(c.l3_accesses) +
                          ") do not equal the L2 miss total (" +
                          std::to_string(c.l2d_misses +
                                         c.l2i_misses) +
                          ")");

            auto machine = machines.find(info.machine);
            if (machine != machines.end()) {
                const uarch::MachineConfig &m = *machine->second;
                if (!m.caches.l3 && c.l3_accesses != c.l3_misses)
                    error(out, loc,
                          "two-level machine '" + info.machine +
                              "' must mirror every last-level access "
                              "as a miss");
                if (!m.tlbs.l2tlb &&
                    c.l2tlb_misses != c.itlb_misses + c.dtlb_misses)
                    error(out, loc,
                          "machine '" + info.machine +
                              "' has no L2 TLB, so every L1 TLB miss "
                              "must walk");
            }
            ++checked;
        }
        emit(out, Severity::Info, "store",
             std::to_string(checked) +
                 " pair entries range-checked in " +
                 context.store_dir);
    }
};

class MemoryMetricRangeRule final : public RuleBase
{
  public:
    std::string code() const override { return "SL026"; }
    std::string name() const override { return "memory-metric-range"; }
    std::string
    description() const override
    {
        return "stored memory-centric metrics (prefetch, way "
               "prediction, DRAM) stay in range and satisfy the "
               "accounting identities";
    }

    void
    run(const LintContext &context,
        std::vector<Diagnostic> &out) const override
    {
        if (context.store_dir.empty()) {
            emit(out, Severity::Info, "store",
                 "memory metric-range check skipped (no --store "
                 "directory given)");
            return;
        }
        // Memory-centric entries are usually produced by the variant
        // suites, not the shipped profiling machines, so resolve names
        // against both.
        std::map<std::string, uarch::MachineConfig> machines;
        for (const uarch::MachineConfig &m : context.machines)
            machines.emplace(m.name, m);
        for (uarch::MachineConfig &m : suites::memoryCentricMachines())
            machines.emplace(m.name, std::move(m));
        for (uarch::MachineConfig &m : suites::sensitivityMachines())
            machines.emplace(m.name, std::move(m));

        core::CampaignStore store(context.store_dir);
        std::size_t checked = 0;
        for (const core::StoreEntryInfo &info : store.scan()) {
            if (info.status != core::StoreStatus::Hit ||
                info.phases != 0)
                continue;
            const std::string loc = "store/" + info.filename;
            uarch::SimulationResult result;
            if (store.load(keyFromInfo(info), result) !=
                core::StoreStatus::Hit)
                continue; // SL018 reports the load failure.
            const uarch::PerfCounters &c = result.counters;

            const struct
            {
                const char *metric;
                double value;
            } ratios[] = {
                {"prefetch_coverage", c.prefetchCoverage()},
                {"prefetch_accuracy", c.prefetchAccuracy()},
                {"prefetch_timeliness", c.prefetchTimeliness()},
                {"way_pred_accuracy", c.wayPredAccuracy()},
                {"row_buffer_hit_rate", c.rowBufferHitRate()},
            };
            for (const auto &r : ratios)
                if (!inUnit(r.value))
                    error(out, loc,
                          std::string(r.metric) + " is " +
                              num(r.value) + ", outside [0, 1]");
            double bw = c.dramBwUtilization();
            if (!(std::isfinite(bw) && bw >= 0.0))
                error(out, loc,
                      "dram_bw_utilization is " + num(bw) +
                          ", not a finite non-negative ratio");

            // The per-slot-bit accounting can never consume or evict
            // more lines than the prefetcher filled; the remainder is
            // still resident in L2.
            if (c.prefetch_useful + c.prefetch_evicted_unused >
                c.prefetch_fills)
                error(out, loc,
                      "prefetch_useful + prefetch_evicted_unused (" +
                          std::to_string(c.prefetch_useful +
                                         c.prefetch_evicted_unused) +
                          ") exceeds prefetch_fills (" +
                          std::to_string(c.prefetch_fills) + ")");
            if (c.dram_row_hits > c.dram_accesses)
                error(out, loc,
                      "dram_row_hits (" +
                          std::to_string(c.dram_row_hits) +
                          ") exceeds dram_accesses (" +
                          std::to_string(c.dram_accesses) + ")");

            auto machine = machines.find(info.machine);
            if (machine != machines.end()) {
                const uarch::MachineConfig &m = machine->second;
                if (m.caches.l2_prefetch_degree == 0 &&
                    (c.prefetch_fills != 0 || c.prefetch_useful != 0 ||
                     c.prefetch_evicted_unused != 0))
                    error(out, loc,
                          "machine '" + info.machine +
                              "' has no prefetcher but the entry "
                              "carries prefetch counters");
                bool way_pred_off =
                    m.caches.l1i.way_prediction ==
                        uarch::WayPredictionKind::None &&
                    m.caches.l1d.way_prediction ==
                        uarch::WayPredictionKind::None &&
                    m.caches.l2.way_prediction ==
                        uarch::WayPredictionKind::None &&
                    (!m.caches.l3 ||
                     m.caches.l3->way_prediction ==
                         uarch::WayPredictionKind::None);
                if (way_pred_off && (c.way_pred_hits != 0 ||
                                     c.way_pred_mispredicts != 0))
                    error(out, loc,
                          "machine '" + info.machine +
                              "' has no way predictor but the entry "
                              "carries way-prediction counters");
                if (!m.caches.dram) {
                    if (c.dram_accesses != 0 || c.dram_row_hits != 0 ||
                        c.dram_busy_cycles != 0 ||
                        c.dram_budget_cycles != 0)
                        error(out, loc,
                              "machine '" + info.machine +
                                  "' has no DRAM model but the entry "
                                  "carries DRAM counters");
                } else if (c.dram_row_hits <= c.dram_accesses) {
                    // The open-page policy's exact cycle identities
                    // (skipped when the hit bound above already
                    // fired, since the miss count would underflow).
                    const uarch::DramConfig &d = *m.caches.dram;
                    std::uint64_t misses =
                        c.dram_accesses - c.dram_row_hits;
                    std::uint64_t busy =
                        c.dram_row_hits * d.burst_cycles +
                        misses * (d.activate_cycles + d.burst_cycles);
                    if (c.dram_busy_cycles != busy)
                        error(out, loc,
                              "dram_busy_cycles (" +
                                  std::to_string(c.dram_busy_cycles) +
                                  ") breaks the open-page identity "
                                  "(expected " + std::to_string(busy) +
                                  ")");
                    std::uint64_t budget =
                        c.dram_accesses * d.cycles_per_burst_budget;
                    if (c.dram_budget_cycles != budget)
                        error(out, loc,
                              "dram_budget_cycles (" +
                                  std::to_string(
                                      c.dram_budget_cycles) +
                                  ") is not accesses * "
                                  "cycles_per_burst_budget (" +
                                  std::to_string(budget) + ")");
                }
            }
            ++checked;
        }
        emit(out, Severity::Info, "store",
             std::to_string(checked) +
                 " entries memory-metric-checked in " +
                 context.store_dir);
    }
};

/** Parsed identity of one BENCH_<pr>.json artifact. */
struct BenchArtifact
{
    std::string filename;
    std::string text;
    std::uint64_t pr = 0; //!< From the file name.
    int version = 0;      //!< 1 or 2; 0 when the schema is foreign.
};

/** Collect BENCH_<pr>.json artifacts under @p dir, name-sorted. */
std::vector<BenchArtifact>
collectBenchArtifacts(const std::string &dir)
{
    std::vector<BenchArtifact> artifacts;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        const std::string name = entry.path().filename().string();
        if (name.size() <= 11 || name.compare(0, 6, "BENCH_") != 0 ||
            name.compare(name.size() - 5, 5, ".json") != 0)
            continue;
        const std::string digits = name.substr(6, name.size() - 11);
        if (digits.empty() ||
            digits.find_first_not_of("0123456789") !=
                std::string::npos)
            continue;
        BenchArtifact artifact;
        artifact.filename = name;
        artifact.pr = std::stoull(digits);
        if (readTextFile(entry.path().string(), artifact.text)) {
            std::string schema;
            if (jsonString(artifact.text, "schema", schema)) {
                if (schema == "speclens-bench-trajectory-v1")
                    artifact.version = 1;
                else if (schema == "speclens-bench-trajectory-v2")
                    artifact.version = 2;
            }
        }
        artifacts.push_back(std::move(artifact));
    }
    std::sort(artifacts.begin(), artifacts.end(),
              [](const BenchArtifact &a, const BenchArtifact &b) {
                  return a.pr < b.pr;
              });
    return artifacts;
}

class BenchSchemaRule final : public RuleBase
{
  public:
    std::string code() const override { return "SL020"; }
    std::string name() const override { return "bench-schema"; }
    std::string
    description() const override
    {
        return "each BENCH_<pr>.json trajectory artifact is "
               "well-formed and internally consistent";
    }

    void
    run(const LintContext &context,
        std::vector<Diagnostic> &out) const override
    {
        if (context.bench_dir.empty()) {
            emit(out, Severity::Info, "bench",
                 "trajectory-artifact checks skipped (no --bench "
                 "directory given)");
            return;
        }
        std::vector<BenchArtifact> artifacts =
            collectBenchArtifacts(context.bench_dir);
        if (artifacts.empty()) {
            emit(out, Severity::Info, "bench",
                 "no BENCH_<pr>.json artifacts under " +
                     context.bench_dir);
            return;
        }
        for (const BenchArtifact &a : artifacts)
            checkArtifact(a, out);
        emit(out, Severity::Info, "bench",
             std::to_string(artifacts.size()) +
                 " trajectory artifacts checked in " +
                 context.bench_dir);
    }

  private:
    void
    checkArtifact(const BenchArtifact &a,
                  std::vector<Diagnostic> &out) const
    {
        const std::string loc = "bench/" + a.filename;
        if (a.text.empty()) {
            error(out, loc, "artifact is unreadable or empty");
            return;
        }
        if (!obs::validateJson(a.text)) {
            error(out, loc, "artifact is not well-formed JSON",
                  "regenerate it with `speclens bench trajectory "
                  "--pr N`");
            return;
        }
        if (a.version == 0) {
            std::string schema;
            jsonString(a.text, "schema", schema);
            error(out, loc,
                  "unknown trajectory schema '" + schema + "'",
                  "expected speclens-bench-trajectory-v1 or -v2");
            return;
        }
        double pr = 0.0;
        if (!jsonNumber(a.text, "pr", pr) ||
            static_cast<std::uint64_t>(pr) != a.pr)
            error(out, loc,
                  "embedded pr number does not match the file name",
                  "trajectory files must be named BENCH_<pr>.json");

        std::size_t campaign = a.text.find("\"campaign\"");
        if (campaign == std::string::npos) {
            error(out, loc, "missing campaign section");
            return;
        }
        double simulations = 0.0, per_sim = 0.0, total = 0.0;
        if (jsonNumber(a.text, "simulations", simulations, campaign) &&
            jsonNumber(a.text, "records_per_simulation", per_sim,
                       campaign) &&
            jsonNumber(a.text, "records_total", total, campaign)) {
            if (total != simulations * per_sim)
                error(out, loc,
                      "records_total != simulations * "
                      "records_per_simulation");
        } else {
            error(out, loc, "campaign volume fields missing");
        }
        std::string fingerprint;
        if (!jsonString(a.text, "fingerprint", fingerprint,
                        campaign) ||
            !isHex16(fingerprint))
            error(out, loc,
                  "campaign fingerprint is not a 16-hex digest");
        bool parity = false;
        if (!jsonBool(a.text, "parity_bit_identical", parity,
                      campaign) ||
            !parity)
            error(out, loc,
                  "fused/materialized parity is not bit-identical",
                  "the streaming pipeline diverged from the "
                  "materialized baseline; never commit such a run");
        double fused = 0.0, materialized = 0.0, speedup = 0.0;
        if (jsonNumber(a.text, "fused_seconds", fused, campaign) &&
            jsonNumber(a.text, "materialized_seconds", materialized,
                       campaign) &&
            jsonNumber(a.text, "speedup_vs_materialized", speedup,
                       campaign)) {
            if (!(fused > 0.0) || !(materialized > 0.0))
                error(out, loc, "non-positive campaign timings");
            else if (!nearRel(speedup, materialized / fused, 1e-6))
                error(out, loc,
                      "speedup_vs_materialized does not equal "
                      "materialized_seconds / fused_seconds");
        }
        if (a.version >= 2)
            checkSeedBaseline(a, loc, campaign, out);
    }

    void
    checkSeedBaseline(const BenchArtifact &a, const std::string &loc,
                      std::size_t campaign,
                      std::vector<Diagnostic> &out) const
    {
        std::size_t baseline = a.text.find("\"seed_baseline\"");
        if (baseline == std::string::npos) {
            error(out, loc, "v2 artifact lacks a seed_baseline block");
            return;
        }
        double seed_rps = 0.0, seed_sps = 0.0;
        if (!jsonNumber(a.text, "records_per_second", seed_rps,
                        baseline) ||
            !jsonNumber(a.text, "simulations_per_second", seed_sps,
                        baseline) ||
            !nearRel(seed_rps, core::kSeedRecordsPerSecond, 1e-6) ||
            !nearRel(seed_sps, core::kSeedSimulationsPerSecond, 1e-6))
            error(out, loc,
                  "seed_baseline does not match the pinned PR-5 "
                  "constants",
                  "kSeedRecordsPerSecond / kSeedSimulationsPerSecond "
                  "in core/perf_trajectory.h are the trajectory's "
                  "fixed origin");
        double rps = 0.0, vs_seed = 0.0;
        if (jsonNumber(a.text, "records_per_second", rps, campaign) &&
            jsonNumber(a.text, "speedup_vs_seed", vs_seed, campaign) &&
            !nearRel(vs_seed, rps / core::kSeedRecordsPerSecond, 1e-6))
            error(out, loc,
                  "speedup_vs_seed does not equal records_per_second "
                  "/ seed records_per_second");
    }
};

class BenchTrajectoryRule final : public RuleBase
{
  public:
    std::string code() const override { return "SL021"; }
    std::string name() const override { return "bench-trajectory"; }
    std::string
    description() const override
    {
        return "the BENCH_<pr>.json series is mutually comparable: "
               "distinct PRs, one pinned configuration";
    }

    void
    run(const LintContext &context,
        std::vector<Diagnostic> &out) const override
    {
        if (context.bench_dir.empty()) {
            emit(out, Severity::Info, "bench",
                 "trajectory-series checks skipped (no --bench "
                 "directory given)");
            return;
        }
        std::vector<BenchArtifact> artifacts =
            collectBenchArtifacts(context.bench_dir);
        if (artifacts.empty()) {
            emit(out, Severity::Info, "bench",
                 "no BENCH_<pr>.json artifacts under " +
                     context.bench_dir);
            return;
        }
        std::set<std::uint64_t> prs;
        for (const BenchArtifact &a : artifacts) {
            const std::string loc = "bench/" + a.filename;
            if (!prs.insert(a.pr).second)
                error(out, loc,
                      "duplicate trajectory point for PR " +
                          std::to_string(a.pr),
                      "each PR contributes exactly one BENCH file");
            if (a.version == 0)
                continue; // SL020 reports the schema defect.
            double instructions = 0.0, warmup = 0.0, salt = 0.0,
                   jobs = 0.0;
            bool have =
                jsonNumber(a.text, "instructions", instructions) &&
                jsonNumber(a.text, "warmup", warmup) &&
                jsonNumber(a.text, "seed_salt", salt) &&
                jsonNumber(a.text, "jobs", jobs);
            if (!have ||
                instructions !=
                    static_cast<double>(
                        core::kTrajectoryInstructions) ||
                warmup !=
                    static_cast<double>(core::kTrajectoryWarmup) ||
                salt != 0.0 || jobs != 1.0)
                error(out, loc,
                      "measurement configuration is not the pinned "
                      "trajectory window",
                      "points are only comparable when every PR "
                      "measures the same pinned configuration "
                      "(core/perf_trajectory.h)");
        }
        emit(out, Severity::Info, "bench",
             std::to_string(prs.size()) +
                 " trajectory points span PRs " +
                 std::to_string(artifacts.front().pr) + ".." +
                 std::to_string(artifacts.back().pr));
    }
};

class ManifestSchemaRule final : public RuleBase
{
  public:
    std::string code() const override { return "SL022"; }
    std::string name() const override { return "manifest-schema"; }
    std::string
    description() const override
    {
        return "the store's run-manifest.json carries the version-1 "
               "schema with every required block";
    }

    void
    run(const LintContext &context,
        std::vector<Diagnostic> &out) const override
    {
        if (context.store_dir.empty()) {
            emit(out, Severity::Info, "manifest",
                 "manifest checks skipped (no --store directory "
                 "given)");
            return;
        }
        const std::string path =
            context.store_dir + "/" + obs::kManifestFileName;
        std::string text;
        if (!readTextFile(path, text)) {
            emit(out, Severity::Info, "manifest",
                 "store has no run manifest (written by campaign "
                 "runs; nothing to check)");
            return;
        }
        const std::string loc = "store/run-manifest.json";
        if (!obs::validateJson(text)) {
            error(out, loc, "manifest is not well-formed JSON",
                  "delete it and re-run a campaign with --store");
            return;
        }
        double version = 0.0;
        if (!jsonNumber(text, "manifest_version", version) ||
            version != 1.0)
            error(out, loc,
                  "manifest_version is not 1",
                  "this checker understands schema version 1 only");
        double engine = 0.0;
        if (jsonNumber(text, "engine_version", engine) &&
            engine !=
                static_cast<double>(core::kStoreEngineVersion))
            emit(out, Severity::Warning, loc,
                 "manifest was written by engine version " +
                     num(engine) + ", current is " +
                     std::to_string(core::kStoreEngineVersion),
                 "re-run the campaign to refresh it");
        std::string fingerprint;
        if (!jsonString(text, "config_fingerprint", fingerprint) ||
            !isHex16(fingerprint))
            error(out, loc,
                  "config_fingerprint is not a 16-hex digest");
        for (const char *block :
             {"\"run\"", "\"totals\"", "\"rejected\"", "\"metrics\""})
            if (text.find(block) == std::string::npos)
                error(out, loc,
                      std::string("missing manifest block ") + block);
        std::size_t totals = text.find("\"totals\"");
        if (totals != std::string::npos) {
            for (const char *key : {"entries", "hits", "misses",
                                    "simulations", "saves"}) {
                double value = 0.0;
                if (!jsonNumber(text, key, value, totals))
                    error(out, loc,
                          std::string("totals block lacks '") + key +
                              "'");
            }
        }
        std::size_t rejected = text.find("\"rejected\"");
        if (rejected != std::string::npos) {
            for (const char *key :
                 {"corrupt", "stale_version", "fingerprint_mismatch",
                  "orphaned_temp"}) {
                double value = 0.0;
                if (!jsonNumber(text, key, value, rejected))
                    error(out, loc,
                          std::string("rejected block lacks '") +
                              key + "'");
            }
        }
    }
};

class ManifestStoreRule final : public RuleBase
{
  public:
    std::string code() const override { return "SL023"; }
    std::string name() const override { return "manifest-store"; }
    std::string
    description() const override
    {
        return "the run manifest's totals agree with the store "
               "directory it describes";
    }

    void
    run(const LintContext &context,
        std::vector<Diagnostic> &out) const override
    {
        if (context.store_dir.empty()) {
            emit(out, Severity::Info, "manifest",
                 "manifest cross-check skipped (no --store directory "
                 "given)");
            return;
        }
        const std::string path =
            context.store_dir + "/" + obs::kManifestFileName;
        std::string text;
        if (!readTextFile(path, text)) {
            emit(out, Severity::Info, "manifest",
                 "store has no run manifest to cross-check");
            return;
        }
        const std::string loc = "store/run-manifest.json";
        std::size_t totals = text.find("\"totals\"");
        double entries = 0.0, misses = 0.0, simulations = 0.0,
               saves = 0.0;
        if (totals == std::string::npos ||
            !jsonNumber(text, "entries", entries, totals) ||
            !jsonNumber(text, "misses", misses, totals) ||
            !jsonNumber(text, "simulations", simulations, totals) ||
            !jsonNumber(text, "saves", saves, totals))
            return; // SL022 reports the schema defect.

        core::CampaignStore store(context.store_dir);
        const double on_disk =
            static_cast<double>(store.entryCount());
        if (entries != on_disk)
            error(out, loc,
                  "manifest records " + num(entries) +
                      " entries but the store holds " + num(on_disk),
                  "the store changed since the manifest was written; "
                  "re-run the campaign with --store to refresh it");
        if (saves > simulations)
            error(out, loc,
                  "manifest records more saves than simulations",
                  "every save is preceded by a computed simulation");
        if (simulations > misses)
            error(out, loc,
                  "manifest records more simulations than store "
                  "misses",
                  "a simulation is only computed after a store miss");
    }
};

class StorePhasedConsistencyRule final : public RuleBase
{
  public:
    std::string code() const override { return "SL024"; }
    std::string name() const override { return "store-phased"; }
    std::string
    description() const override
    {
        return "phased store entries combine exactly: counters sum "
               "field-wise and combined CPI lies within phase CPIs";
    }

    void
    run(const LintContext &context,
        std::vector<Diagnostic> &out) const override
    {
        if (context.store_dir.empty()) {
            emit(out, Severity::Info, "store",
                 "phased-consistency check skipped (no --store "
                 "directory given)");
            return;
        }
        core::CampaignStore store(context.store_dir);
        std::size_t checked = 0;
        for (const core::StoreEntryInfo &info : store.scan()) {
            if (info.status != core::StoreStatus::Hit ||
                info.phases == 0)
                continue;
            const std::string loc = "store/" + info.filename;
            uarch::PhasedSimulationResult result;
            if (store.loadPhased(keyFromInfo(info), result) !=
                core::StoreStatus::Hit)
                continue; // SL018 reports the load failure.
            if (result.per_phase.size() != info.phases) {
                error(out, loc,
                      "header claims " + std::to_string(info.phases) +
                          " phases but the payload holds " +
                          std::to_string(result.per_phase.size()));
                continue;
            }
            uarch::PerfCounters sum;
            for (const uarch::SimulationResult &phase :
                 result.per_phase)
                sum += phase.counters;
            for (const CounterField &f : kCounterFields) {
                if (result.combined_counters.*(f.field) !=
                    sum.*(f.field)) {
                    error(out, loc,
                          std::string("combined counter '") + f.name +
                              "' is not the sum of its phases",
                          "phased results are combined by exact "
                          "field-wise accumulation");
                    break;
                }
            }
            double lo = result.per_phase.front().cpi();
            double hi = lo;
            for (const uarch::SimulationResult &phase :
                 result.per_phase) {
                lo = std::min(lo, phase.cpi());
                hi = std::max(hi, phase.cpi());
            }
            if (!(result.combined_cpi >= lo * (1.0 - 1e-9) - 1e-9 &&
                  result.combined_cpi <= hi * (1.0 + 1e-9) + 1e-9))
                error(out, loc,
                      "combined CPI " + num(result.combined_cpi) +
                          " lies outside the per-phase range [" +
                          num(lo) + ", " + num(hi) + "]",
                      "the execution-weighted mean cannot leave the "
                      "convex hull of its phases");
            ++checked;
        }
        emit(out, Severity::Info, "store",
             checked == 0
                 ? "no phased entries to check"
                 : std::to_string(checked) +
                       " phased entries combine consistently");
    }
};

class StoreShardLayoutRule final : public RuleBase
{
  public:
    std::string code() const override { return "SL025"; }
    std::string name() const override { return "store-shard-layout"; }
    std::string
    description() const override
    {
        return "every store entry sits in the shard its fingerprint "
               "names; flat root entries are legacy";
    }

    void
    run(const LintContext &context,
        std::vector<Diagnostic> &out) const override
    {
        if (context.store_dir.empty()) {
            emit(out, Severity::Info, "store",
                 "shard-layout check skipped (no --store directory "
                 "given)");
            return;
        }
        namespace fs = std::filesystem;
        std::error_code ec;
        std::size_t well_placed = 0, legacy = 0, misfiled = 0;
        for (const fs::directory_entry &entry :
             fs::directory_iterator(context.store_dir, ec)) {
            std::string name = entry.path().filename().string();
            if (entry.is_regular_file() && isEntryName(name)) {
                // Pre-shard flat layout: load() still finds these
                // through the root fallback, so this is a warning,
                // not an error.
                ++legacy;
                emit(out, Severity::Warning, "store/" + name,
                     "entry uses the pre-shard flat layout",
                     "re-run the campaign with --store to rewrite it "
                     "into its fingerprint shard");
                continue;
            }
            if (!entry.is_directory() ||
                name.rfind(core::kStoreShardPrefix, 0) != 0)
                continue;
            for (const fs::directory_entry &file :
                 fs::directory_iterator(entry.path(), ec)) {
                std::string filename =
                    file.path().filename().string();
                if (!file.is_regular_file() ||
                    !isEntryName(filename))
                    continue;
                const std::string loc =
                    "store/" + name + "/" + filename;
                std::uint64_t fingerprint = 0;
                if (!parseHex16(filename.substr(0, 16),
                                fingerprint)) {
                    error(out, loc,
                          "entry filename is not a 16-hex "
                          "fingerprint");
                    continue;
                }
                std::string expected = core::storeShardDirName(
                    core::storeShardIndex(fingerprint));
                if (name != expected) {
                    ++misfiled;
                    error(out, loc,
                          "entry is filed in " + name +
                              " but its fingerprint belongs in " +
                              expected,
                          "loads resolve entries by fingerprint "
                          "shard, so a misfiled entry is unreachable "
                          "and silently recomputed; move or delete "
                          "it");
                } else {
                    ++well_placed;
                }
            }
        }
        emit(out, Severity::Info, "store",
             std::to_string(well_placed) +
                 " entries correctly sharded, " +
                 std::to_string(legacy) + " legacy flat, " +
                 std::to_string(misfiled) + " misfiled");
    }

  private:
    static bool
    isEntryName(const std::string &name)
    {
        return name.size() == 22 &&
               name.compare(16, 6, ".slart") == 0;
    }

    static bool
    parseHex16(const std::string &text, std::uint64_t &value)
    {
        if (text.size() != 16)
            return false;
        value = 0;
        for (char c : text) {
            std::uint64_t digit;
            if (c >= '0' && c <= '9')
                digit = static_cast<std::uint64_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = static_cast<std::uint64_t>(c - 'a') + 10;
            else
                return false;
            value = (value << 4) | digit;
        }
        return true;
    }
};

} // namespace

std::vector<const suites::BenchmarkInfo *>
LintContext::allBenchmarks() const
{
    std::vector<const suites::BenchmarkInfo *> all;
    all.reserve(cpu2017.size() + cpu2006.size() + emerging.size());
    for (const auto *list : {&cpu2017, &cpu2006, &emerging})
        for (const suites::BenchmarkInfo &b : *list)
            all.push_back(&b);
    return all;
}

LintContext
shippedContext()
{
    LintContext context;
    context.cpu2017 = suites::spec2017();
    context.cpu2006 = suites::spec2006();
    context.emerging = suites::emergingBenchmarks();
    context.machines = suites::profilingMachines();
    context.input_groups = suites::inputSetGroupsInt();
    for (suites::InputSetGroup &g : suites::inputSetGroupsFp())
        context.input_groups.push_back(std::move(g));
    return context;
}

std::vector<std::unique_ptr<Rule>>
defaultRules()
{
    std::vector<std::unique_ptr<Rule>> rules;
    rules.push_back(std::make_unique<MixRangeRule>());
    rules.push_back(std::make_unique<MixSumRule>());
    rules.push_back(std::make_unique<CpiComponentsRule>());
    rules.push_back(std::make_unique<WorkingSetShapeRule>());
    rules.push_back(std::make_unique<CodeModelRule>());
    rules.push_back(std::make_unique<BranchModelRule>());
    rules.push_back(std::make_unique<CacheMonotonicityRule>());
    rules.push_back(std::make_unique<CacheGeometryRule>());
    rules.push_back(std::make_unique<TlbConfigRule>());
    rules.push_back(std::make_unique<MachineConfigRule>());
    rules.push_back(std::make_unique<TransformRule>());
    rules.push_back(std::make_unique<CrossReferenceRule>());
    rules.push_back(std::make_unique<InputSetRule>());
    rules.push_back(std::make_unique<ScoreDatabaseRule>());
    rules.push_back(std::make_unique<PaperBoundsRule>());
    rules.push_back(std::make_unique<StoreIntegrityRule>());
    rules.push_back(std::make_unique<DegenerateFeaturesRule>());
    rules.push_back(std::make_unique<StoreResultAuditRule>());
    rules.push_back(std::make_unique<StoreMetricRangeRule>());
    rules.push_back(std::make_unique<BenchSchemaRule>());
    rules.push_back(std::make_unique<BenchTrajectoryRule>());
    rules.push_back(std::make_unique<ManifestSchemaRule>());
    rules.push_back(std::make_unique<ManifestStoreRule>());
    rules.push_back(std::make_unique<StorePhasedConsistencyRule>());
    rules.push_back(std::make_unique<StoreShardLayoutRule>());
    rules.push_back(std::make_unique<MemoryMetricRangeRule>());
    return rules;
}

std::unique_ptr<Rule>
ruleByCode(const std::string &code)
{
    for (std::unique_ptr<Rule> &rule : defaultRules())
        if (rule->code() == code)
            return std::move(rule);
    throw std::invalid_argument("unknown lint rule code: " + code);
}

} // namespace lint
} // namespace speclens
