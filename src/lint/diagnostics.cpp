/**
 * @file
 * Diagnostic vocabulary implementation.
 */

#include "diagnostics.h"

#include <stdexcept>

namespace speclens {
namespace lint {

std::string
severityName(Severity severity)
{
    switch (severity) {
      case Severity::Info: return "info";
      case Severity::Warning: return "warning";
      case Severity::Error: return "error";
    }
    return "unknown";
}

Severity
severityFromName(const std::string &name)
{
    if (name == "info")
        return Severity::Info;
    if (name == "warning")
        return Severity::Warning;
    if (name == "error")
        return Severity::Error;
    throw std::invalid_argument("unknown severity: " + name);
}

std::size_t
countSeverity(const std::vector<Diagnostic> &diagnostics,
              Severity severity)
{
    std::size_t n = 0;
    for (const Diagnostic &d : diagnostics)
        if (d.severity == severity)
            ++n;
    return n;
}

} // namespace lint
} // namespace speclens
