/**
 * @file
 * Linter driver and report renderers.
 */

#include "linter.h"

#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "lint/rules.h"

namespace speclens {
namespace lint {

namespace {

/** JSON string escaping for the report renderer. */
std::string
jsonEscape(const std::string &text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

ReportFormat
reportFormatFromName(const std::string &name)
{
    if (name == "text")
        return ReportFormat::Text;
    if (name == "json")
        return ReportFormat::Json;
    throw std::invalid_argument("unknown report format: " + name);
}

Linter::Linter() : rules_(defaultRules()) {}

Linter::Linter(std::vector<std::unique_ptr<Rule>> rules)
    : rules_(std::move(rules))
{
}

LintReport
Linter::run(const LintContext &context) const
{
    LintReport report;
    for (const std::unique_ptr<Rule> &rule : rules_) {
        rule->run(context, report.diagnostics);
        ++report.rules_run;
    }
    return report;
}

std::string
renderText(const LintReport &report, Severity min_severity)
{
    std::ostringstream out;
    std::size_t shown = 0;
    for (const Diagnostic &d : report.diagnostics) {
        if (d.severity < min_severity)
            continue;
        ++shown;
        out << d.code << " [" << severityName(d.severity) << "] "
            << d.location << "\n    " << d.message << "\n";
        if (!d.fix_hint.empty())
            out << "    hint: " << d.fix_hint << "\n";
    }
    std::size_t hidden = report.diagnostics.size() - shown;
    out << "lint: " << report.rules_run << " rules, "
        << report.errors() << " errors, " << report.warnings()
        << " warnings";
    if (hidden > 0)
        out << " (" << hidden << " below severity filter)";
    out << "\n";
    return out.str();
}

std::string
renderJson(const LintReport &report, Severity min_severity)
{
    std::ostringstream out;
    out << "{\n  \"rules_run\": " << report.rules_run
        << ",\n  \"errors\": " << report.errors()
        << ",\n  \"warnings\": " << report.warnings()
        << ",\n  \"diagnostics\": [";
    bool first = true;
    for (const Diagnostic &d : report.diagnostics) {
        if (d.severity < min_severity)
            continue;
        out << (first ? "" : ",") << "\n    {\"code\": \""
            << jsonEscape(d.code) << "\", \"severity\": \""
            << severityName(d.severity) << "\", \"location\": \""
            << jsonEscape(d.location) << "\", \"message\": \""
            << jsonEscape(d.message) << "\", \"fix_hint\": \""
            << jsonEscape(d.fix_hint) << "\"}";
        first = false;
    }
    out << (first ? "]" : "\n  ]") << "\n}\n";
    return out.str();
}

} // namespace lint
} // namespace speclens
