/**
 * @file
 * Diagnostic vocabulary of the static-analysis subsystem.
 *
 * Every lint rule reports findings as Diagnostic values: a stable code
 * (SL001...), a severity, the location of the offending datum (a
 * benchmark/field or machine/structure path), a human-readable message
 * and, where possible, a hint describing the fix.  The calibration
 * tables under src/suites are hand-entered from the paper; a silently
 * out-of-range field skews every downstream PCA/clustering/subsetting
 * result without crashing anything, so the diagnostics here are the
 * first line of defence.
 */

#ifndef SPECLENS_LINT_DIAGNOSTICS_H
#define SPECLENS_LINT_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace speclens {
namespace lint {

/** How bad a finding is. */
enum class Severity {
    Info,    //!< Informational note (skipped checks, statistics).
    Warning, //!< Suspicious but not certainly wrong.
    Error,   //!< Model is invalid; downstream results untrustworthy.
};

/** Lower-case severity name ("info", "warning", "error"). */
std::string severityName(Severity severity);

/**
 * Parse a severity name.
 * @throws std::invalid_argument on unknown names.
 */
Severity severityFromName(const std::string &name);

/** One finding of one rule. */
struct Diagnostic
{
    /** Stable rule code, e.g. "SL003". */
    std::string code;

    Severity severity = Severity::Error;

    /**
     * Path of the offending datum, e.g. "505.mcf_r/mix.load" or
     * "machine:skylake/caches.l2".
     */
    std::string location;

    /** What is wrong, with the offending value spelled out. */
    std::string message;

    /** How to fix it; empty when no hint applies. */
    std::string fix_hint;
};

/** Number of diagnostics in @p diagnostics at exactly @p severity. */
std::size_t countSeverity(const std::vector<Diagnostic> &diagnostics,
                          Severity severity);

} // namespace lint
} // namespace speclens

#endif // SPECLENS_LINT_DIAGNOSTICS_H
