/**
 * @file
 * The Linter: runs a rule battery over a LintContext and renders the
 * findings.
 *
 * Reports are rendered either as human-readable text (one finding per
 * block with its location, message and fix hint) or as JSON for CI
 * tooling.  The severity filter affects display only; exit-code
 * decisions use the unfiltered error count so a filtered report cannot
 * hide a broken model.
 */

#ifndef SPECLENS_LINT_LINTER_H
#define SPECLENS_LINT_LINTER_H

#include <memory>
#include <string>
#include <vector>

#include "lint/diagnostics.h"
#include "lint/rule.h"

namespace speclens {
namespace lint {

/** Outcome of one lint run. */
struct LintReport
{
    /** All findings in rule order, then emission order. */
    std::vector<Diagnostic> diagnostics;

    /** Number of rules that ran. */
    std::size_t rules_run = 0;

    std::size_t errors() const
    {
        return countSeverity(diagnostics, Severity::Error);
    }

    std::size_t warnings() const
    {
        return countSeverity(diagnostics, Severity::Warning);
    }

    /** True when no finding is an Error. */
    bool clean() const { return errors() == 0; }
};

/** Output format of a rendered report. */
enum class ReportFormat { Text, Json };

/**
 * Parse a format name ("text" / "json").
 * @throws std::invalid_argument on unknown names.
 */
ReportFormat reportFormatFromName(const std::string &name);

/** Runs rules over a context. */
class Linter
{
  public:
    /** Linter with the full shipped battery (defaultRules()). */
    Linter();

    /** Linter with a custom battery. */
    explicit Linter(std::vector<std::unique_ptr<Rule>> rules);

    /** The battery, in execution order. */
    const std::vector<std::unique_ptr<Rule>> &rules() const
    {
        return rules_;
    }

    /** Run every rule over @p context. */
    LintReport run(const LintContext &context) const;

  private:
    std::vector<std::unique_ptr<Rule>> rules_;
};

/**
 * Render @p report as human-readable text.
 *
 * @param min_severity Findings below this severity are omitted from
 *        the listing (the summary line always reflects all findings).
 */
std::string renderText(const LintReport &report,
                       Severity min_severity = Severity::Info);

/** Render @p report as a JSON document. */
std::string renderJson(const LintReport &report,
                       Severity min_severity = Severity::Info);

} // namespace lint
} // namespace speclens

#endif // SPECLENS_LINT_LINTER_H
