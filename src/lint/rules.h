/**
 * @file
 * The battery of shipped lint rules.
 *
 * Codes are stable and documented in DESIGN.md:
 *
 * | Code  | Name               | Verifies                                |
 * |-------|--------------------|-----------------------------------------|
 * | SL001 | mix-range          | instruction-mix fractions in [0,1]      |
 * | SL002 | mix-sum            | working-set weights sum to 1            |
 * | SL003 | cpi-components     | non-negative CPI terms, icount > 0      |
 * | SL004 | working-set-shape  | set sizes increase, strides sane        |
 * | SL005 | code-model         | hot code within code footprint          |
 * | SL006 | branch-model       | branch-population probabilities         |
 * | SL007 | cache-monotonic    | cache size/latency grow with level      |
 * | SL008 | cache-geometry     | per-cache geometry (lines, ways, sets)  |
 * | SL009 | tlb-config         | TLB entries/ways/pages, L2 TLB covers L1|
 * | SL010 | machine-config     | frequency, predictor and power sanity   |
 * | SL011 | transform          | ISA/compiler transform keeps mixes valid|
 * | SL012 | cross-reference    | partner links, unique names/ids, counts |
 * | SL013 | input-sets         | variant counts/names/models resolve     |
 * | SL014 | score-database     | finite positive speedups for every pair |
 * | SL015 | paper-bounds       | Table I/II envelopes (deep: simulated)  |
 * | SL016 | store-integrity    | artifact-store entries verify and match |
 * | SL017 | degenerate-features| feature columns vary (deep: simulated)  |
 * | SL018 | store-result-audit | stored counters obey accounting identities|
 * | SL019 | store-metric-range | stored metrics in physical envelopes    |
 * | SL020 | bench-schema       | each BENCH_<pr>.json is self-consistent |
 * | SL021 | bench-trajectory   | BENCH series comparable, pinned config  |
 * | SL022 | manifest-schema    | run-manifest.json carries the v1 schema |
 * | SL023 | manifest-store     | manifest totals match the store on disk |
 * | SL024 | store-phased       | phased entries combine exactly          |
 * | SL025 | store-shard-layout | entries sit in their fingerprint shard  |
 * | SL026 | memory-metric-range| stored memory-centric metrics in range  |
 */

#ifndef SPECLENS_LINT_RULES_H
#define SPECLENS_LINT_RULES_H

#include <memory>
#include <vector>

#include "lint/rule.h"

namespace speclens {
namespace lint {

/** All shipped rules in code order. */
std::vector<std::unique_ptr<Rule>> defaultRules();

/**
 * The shipped rule with diagnostic code @p code ("SL001"...).
 * @throws std::invalid_argument on unknown codes.
 */
std::unique_ptr<Rule> ruleByCode(const std::string &code);

} // namespace lint
} // namespace speclens

#endif // SPECLENS_LINT_RULES_H
