/**
 * @file
 * Phased workload implementation.
 */

#include "phased_workload.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/rng.h"

namespace speclens {
namespace trace {

void
PhasedWorkload::validate() const
{
    if (name.empty())
        throw std::invalid_argument("PhasedWorkload: empty name");
    if (phases.empty())
        throw std::invalid_argument(name + ": no phases");
    double total = 0.0;
    for (const Phase &phase : phases) {
        if (phase.weight <= 0.0)
            throw std::invalid_argument(name + ": non-positive weight");
        total += phase.weight;
        phase.profile.validate();
    }
    if (std::fabs(total - 1.0) > 1e-6)
        throw std::invalid_argument(name + ": weights must sum to 1");
}

double
PhasedWorkload::dynamicInstructionsBillions() const
{
    double total = 0.0;
    for (const Phase &phase : phases)
        total += phase.weight *
                 phase.profile.dynamic_instructions_billions;
    return total;
}

void
Phase::hashInto(stats::Fingerprinter &fp) const
{
    fp.tag("phase");
    profile.hashInto(fp);
    fp.f64(weight);
}

void
PhasedWorkload::hashInto(stats::Fingerprinter &fp) const
{
    fp.tag("phased");
    fp.str(name);
    fp.u64(phases.size());
    for (const Phase &phase : phases)
        phase.hashInto(fp);
}

std::uint64_t
PhasedWorkload::fingerprint() const
{
    stats::Fingerprinter fp;
    hashInto(fp);
    return fp.value();
}

PhasedWorkload
derivePhases(const WorkloadProfile &base, std::size_t num_phases,
             double drift)
{
    if (num_phases < 1)
        throw std::invalid_argument("derivePhases: need >= 1 phase");

    PhasedWorkload out;
    out.name = base.name;

    stats::Rng rng(stats::combineSeeds(base.seed(), 0x9a5e5u));

    // Raw positive weights, normalised below (deterministic Dirichlet
    // stand-in).
    std::vector<double> raw(num_phases);
    double total = 0.0;
    for (double &w : raw) {
        w = 0.25 + rng.uniform();
        total += w;
    }

    for (std::size_t k = 0; k < num_phases; ++k) {
        Phase phase;
        phase.weight = raw[k] / total;
        phase.profile = base;
        phase.profile.name =
            base.name + "@" + std::to_string(k + 1);

        auto drifted = [&rng, drift](double value, double relative) {
            double factor =
                1.0 + rng.gaussian(0.0, drift * relative);
            return value * std::clamp(factor, 0.25, 4.0);
        };

        WorkloadProfile &p = phase.profile;
        for (WorkingSet &ws : p.memory.data) {
            ws.bytes = std::max(ws.stride_bytes,
                                drifted(ws.bytes, 1.0));
            // Phase-dependent access emphasis: hot phases hammer one
            // set, scan phases another.
            ws.weight = std::max(1e-6, drifted(ws.weight, 0.6));
        }
        p.mix.load = std::clamp(drifted(p.mix.load, 0.3), 0.0, 0.6);
        p.mix.store = std::clamp(drifted(p.mix.store, 0.3), 0.0, 0.4);
        p.mix.branch =
            std::clamp(drifted(p.mix.branch, 0.25), 0.005, 0.4);
        p.branch.biased_fraction = std::clamp(
            drifted(p.branch.biased_fraction, 0.08), 0.3, 0.995);
        p.memory.code_locality = std::clamp(
            drifted(p.memory.code_locality, 0.02), 0.5, 1.0);

        p.validate();
        out.phases.push_back(std::move(phase));
    }
    out.validate();
    return out;
}

} // namespace trace
} // namespace speclens
