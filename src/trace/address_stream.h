/**
 * @file
 * Synthetic data-address generation from a working-set mixture model.
 *
 * Every data access picks one of the profile's working sets (hot / warm
 * / cold) with probability proportional to its weight, then either
 * advances a sequential cursor through the set (spatial locality) or
 * touches a uniformly random cache line in it (temporal-reuse-limited
 * behaviour).  Under an LRU cache of capacity C lines, a set of L > C
 * lines accessed uniformly misses at rate ~ (L - C) / L, so footprints
 * relative to the simulated machine's cache sizes directly control the
 * per-machine MPKI — the machine-dependence at the heart of the paper's
 * multi-machine methodology.
 */

#ifndef SPECLENS_TRACE_ADDRESS_STREAM_H
#define SPECLENS_TRACE_ADDRESS_STREAM_H

#include <array>
#include <cstdint>

#include "stats/rng.h"
#include "trace/workload_profile.h"

namespace speclens {
namespace trace {

/** Cache line size assumed throughout the toolkit (bytes). */
constexpr std::uint64_t kLineBytes = 64;

/** Page size assumed throughout the toolkit (bytes). */
constexpr std::uint64_t kPageBytes = 4096;

/**
 * Disjoint virtual-address layout.  Data regions (one per working set)
 * are placed 256 GiB apart so footprints of any modelled size never
 * alias across regions, and the code segment never collides with data.
 * Exposed so the simulation driver can pre-warm the same addresses the
 * stream will touch.
 */
constexpr std::uint64_t kDataRegionStride = 1ull << 38;
constexpr std::uint64_t kDataBase = 1ull << 40;
constexpr std::uint64_t kCodeBase = 1ull << 22;

/** Generator of data-side effective addresses. */
class DataAddressStream
{
  public:
    /**
     * @param model Working-set mixture to sample from.
     * @param rng Generator owned by the caller; the stream consumes a
     *            bounded number of draws per next() call.
     */
    explicit DataAddressStream(const MemoryModel &model);

    /** Produce the next effective address (inline below; hot path). */
    std::uint64_t next(stats::Rng &rng);

  private:
    struct Region
    {
        std::uint64_t base;        //!< First byte of the region.
        std::uint64_t elements;    //!< Addressable elements in the set.
        std::uint64_t stride;      //!< Bytes between elements.
        double cumulative_weight;  //!< Upper edge of the sampling band.
        double sequential;         //!< Streaming-access probability.
        std::uint64_t cursor = 0;  //!< Sequential element cursor.
    };

    std::array<Region, 4> regions_;
};

/**
 * Generator of instruction-fetch addresses.
 *
 * Maintains a program counter that advances linearly and is redirected
 * by taken branches: with probability MemoryModel::code_locality the
 * target stays inside the hot code region (a loop nest), otherwise it
 * lands uniformly in the full code footprint.  Benchmarks with large
 * footprints and low locality (perlbench, gcc) therefore show the
 * highest I-cache/I-TLB miss activity, matching Section IV-E.
 */
class CodeAddressStream
{
  public:
    explicit CodeAddressStream(const MemoryModel &model);

    /** Address of the next sequential instruction (PC += 4). */
    std::uint64_t nextPc();

    /** Redirect the PC because a branch resolved taken. */
    void takeBranch(stats::Rng &rng);

  private:
    std::uint64_t base_;        //!< Code region start.
    std::uint64_t size_;        //!< Code footprint (bytes).
    std::uint64_t hot_size_;    //!< Hot region (bytes).
    double locality_;           //!< P(target within hot region).
    std::uint64_t pc_;          //!< Current fetch address.
};

// ---------------------------------------------------------------------
// Hot-path definitions.  One data address per load/store and one fetch
// address per instruction, so these must inline into the generator's
// batch fill loop.  Every change here must preserve the RNG draw
// sequence and the produced addresses exactly — the streams are part
// of the bit-identical reproducibility contract.

inline std::uint64_t
DataAddressStream::next(stats::Rng &rng)
{
    double u = rng.uniform();
    Region *region = &regions_.back();
    for (Region &r : regions_) {
        if (u < r.cumulative_weight) {
            region = &r;
            break;
        }
    }

    if (rng.bernoulli(region->sequential)) {
        // Stream through the set in word-sized steps so consecutive
        // accesses share cache lines (spatial locality): 8 accesses per
        // line before the stream pays a miss on a large set.
        std::uint64_t span = region->elements * region->stride;
        std::uint64_t address = region->base + region->cursor;
        // cursor < span on entry, so wrapping is rare: pay the 64-bit
        // modulo only then, not on every access.  The stored value is
        // exactly (cursor + 8) % span either way.
        std::uint64_t advanced = region->cursor + 8;
        region->cursor = advanced >= span ? advanced % span : advanced;
        return address;
    }
    std::uint64_t element = rng.below(region->elements);
    // Offset within the element is irrelevant to any simulator here;
    // use the element base for clarity.
    return region->base + element * region->stride;
}

inline std::uint64_t
CodeAddressStream::nextPc()
{
    std::uint64_t fetched = pc_;
    pc_ += 4;
    // Fall off the end of the code segment: wrap to the start, modelling
    // the outermost loop.
    if (pc_ >= base_ + size_)
        pc_ = base_;
    return fetched;
}

inline void
CodeAddressStream::takeBranch(stats::Rng &rng)
{
    std::uint64_t span = rng.bernoulli(locality_) ? hot_size_ : size_;
    // Branch targets are 4-byte aligned within the selected span.
    std::uint64_t slots = span / 4;
    pc_ = base_ + rng.below(slots ? slots : 1) * 4;
}

} // namespace trace
} // namespace speclens

#endif // SPECLENS_TRACE_ADDRESS_STREAM_H
