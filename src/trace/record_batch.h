/**
 * @file
 * Structure-of-arrays batch of dynamic instruction records.
 *
 * The fused simulation pipeline streams records from the trace
 * generator into the micro-architecture models in fixed-capacity
 * batches instead of materializing whole simulation windows as
 * std::vector<Instruction>.  A batch keeps the in-flight working set
 * small (a few tens of KiB, L1/L2 resident) and stores each field in
 * its own contiguous array, so the retirement-counting passes over a
 * batch are plain strided loops the compiler can vectorize.
 *
 * Field semantics are identical to trace::Instruction; instruction(i)
 * reconstructs the AoS record for adapters and tests.
 */

#ifndef SPECLENS_TRACE_RECORD_BATCH_H
#define SPECLENS_TRACE_RECORD_BATCH_H

#include <array>
#include <cstddef>
#include <cstdint>

#include "trace/instruction.h"

namespace speclens {
namespace trace {

/**
 * Records per batch.  Large enough that per-batch overhead (loop
 * prologue, counter flush) is noise against thousands of records,
 * small enough that the whole SoA working set (~90 KiB) plus the
 * simulated structures stay cache-resident.
 */
inline constexpr std::size_t kRecordBatchCapacity = 4096;

/** One batch of dynamic instructions in structure-of-arrays form. */
struct RecordBatch
{
    /** Packed boolean flags (flags array). */
    static constexpr std::uint8_t kTakenBit = 1u << 0;
    static constexpr std::uint8_t kKernelBit = 1u << 1;

    std::array<std::uint64_t, kRecordBatchCapacity> pc;
    std::array<std::uint64_t, kRecordBatchCapacity> address;
    std::array<std::uint32_t, kRecordBatchCapacity> branch_id;
    std::array<OpClass, kRecordBatchCapacity> op;
    std::array<std::uint8_t, kRecordBatchCapacity> flags;

    /** Valid records (a prefix of every array). */
    std::size_t size = 0;

    bool taken(std::size_t i) const { return (flags[i] & kTakenBit) != 0; }
    bool kernel(std::size_t i) const
    {
        return (flags[i] & kKernelBit) != 0;
    }

    /** AoS view of record @p i, for adapters and tests. */
    Instruction
    instruction(std::size_t i) const
    {
        Instruction inst;
        inst.pc = pc[i];
        inst.op = op[i];
        inst.address = address[i];
        inst.branch_id = branch_id[i];
        inst.taken = taken(i);
        inst.kernel = kernel(i);
        return inst;
    }
};

} // namespace trace
} // namespace speclens

#endif // SPECLENS_TRACE_RECORD_BATCH_H
