/**
 * @file
 * Address stream implementations.
 */

#include "address_stream.h"

#include <cmath>

namespace speclens {
namespace trace {

namespace {

std::uint64_t
elementCount(double bytes, double stride)
{
    double elements = bytes / stride;
    return elements < 1.0 ? 1 : static_cast<std::uint64_t>(elements);
}

} // namespace

DataAddressStream::DataAddressStream(const MemoryModel &model)
    : regions_{}
{
    double total_weight = 0.0;
    for (const WorkingSet &ws : model.data)
        total_weight += ws.weight;

    double cumulative = 0.0;
    for (std::size_t i = 0; i < regions_.size(); ++i) {
        const WorkingSet &ws = model.data[i];
        cumulative += ws.weight / total_weight;
        regions_[i] = Region{kDataBase + i * kDataRegionStride,
                             elementCount(ws.bytes, ws.stride_bytes),
                             static_cast<std::uint64_t>(ws.stride_bytes),
                             cumulative, ws.sequential, 0};
    }
    // Guard against floating-point shortfall in the last band.
    regions_.back().cumulative_weight = 1.0;
}

std::uint64_t
DataAddressStream::next(stats::Rng &rng)
{
    double u = rng.uniform();
    Region *region = &regions_.back();
    for (Region &r : regions_) {
        if (u < r.cumulative_weight) {
            region = &r;
            break;
        }
    }

    if (rng.bernoulli(region->sequential)) {
        // Stream through the set in word-sized steps so consecutive
        // accesses share cache lines (spatial locality): 8 accesses per
        // line before the stream pays a miss on a large set.
        std::uint64_t span = region->elements * region->stride;
        std::uint64_t address = region->base + region->cursor;
        region->cursor = (region->cursor + 8) % span;
        return address;
    }
    std::uint64_t element = rng.below(region->elements);
    // Offset within the element is irrelevant to any simulator here;
    // use the element base for clarity.
    return region->base + element * region->stride;
}

CodeAddressStream::CodeAddressStream(const MemoryModel &model)
    : base_(kCodeBase),
      size_(static_cast<std::uint64_t>(model.code_bytes)),
      hot_size_(static_cast<std::uint64_t>(model.hot_code_bytes)),
      locality_(model.code_locality),
      pc_(kCodeBase)
{
}

std::uint64_t
CodeAddressStream::nextPc()
{
    std::uint64_t fetched = pc_;
    pc_ += 4;
    // Fall off the end of the code segment: wrap to the start, modelling
    // the outermost loop.
    if (pc_ >= base_ + size_)
        pc_ = base_;
    return fetched;
}

void
CodeAddressStream::takeBranch(stats::Rng &rng)
{
    std::uint64_t span = rng.bernoulli(locality_) ? hot_size_ : size_;
    // Branch targets are 4-byte aligned within the selected span.
    std::uint64_t slots = span / 4;
    pc_ = base_ + rng.below(slots ? slots : 1) * 4;
}

} // namespace trace
} // namespace speclens
