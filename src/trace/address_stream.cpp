/**
 * @file
 * Address stream implementations.
 */

#include "address_stream.h"

#include <cmath>

namespace speclens {
namespace trace {

namespace {

std::uint64_t
elementCount(double bytes, double stride)
{
    double elements = bytes / stride;
    return elements < 1.0 ? 1 : static_cast<std::uint64_t>(elements);
}

} // namespace

DataAddressStream::DataAddressStream(const MemoryModel &model)
    : regions_{}
{
    double total_weight = 0.0;
    for (const WorkingSet &ws : model.data)
        total_weight += ws.weight;

    double cumulative = 0.0;
    for (std::size_t i = 0; i < regions_.size(); ++i) {
        const WorkingSet &ws = model.data[i];
        cumulative += ws.weight / total_weight;
        regions_[i] = Region{kDataBase + i * kDataRegionStride,
                             elementCount(ws.bytes, ws.stride_bytes),
                             static_cast<std::uint64_t>(ws.stride_bytes),
                             cumulative, ws.sequential, 0};
    }
    // Guard against floating-point shortfall in the last band.
    regions_.back().cumulative_weight = 1.0;
}

CodeAddressStream::CodeAddressStream(const MemoryModel &model)
    : base_(kCodeBase),
      size_(static_cast<std::uint64_t>(model.code_bytes)),
      hot_size_(static_cast<std::uint64_t>(model.hot_code_bytes)),
      locality_(model.code_locality),
      pc_(kCodeBase)
{
}

} // namespace trace
} // namespace speclens
