/**
 * @file
 * Phased workload models.
 *
 * Real benchmarks are not statistically stationary: gcc parses, then
 * optimises, then emits code, and each phase has its own locality and
 * branch character.  The paper's related work (Sherwood's SimPoints,
 * Nair's CPU2006 simulation points — refs [32], [33]) exploits exactly
 * this structure to cut simulation cost *within* a benchmark, the
 * complementary axis to the paper's cutting *across* benchmarks.
 *
 * A PhasedWorkload is an ordered set of stationary phases, each a full
 * WorkloadProfile with an execution weight.  The simulation driver can
 * run the phases in sequence (warm structures carry over, as on real
 * hardware) and the phase-analysis module reproduces the SimPoint
 * idea: measure each phase once, cluster them, and estimate whole-run
 * behaviour from representative phases only.
 */

#ifndef SPECLENS_TRACE_PHASED_WORKLOAD_H
#define SPECLENS_TRACE_PHASED_WORKLOAD_H

#include <string>
#include <vector>

#include "trace/workload_profile.h"

namespace speclens {
namespace trace {

/** One stationary execution phase. */
struct Phase
{
    /** Behaviour of the phase. */
    WorkloadProfile profile;

    /** Fraction of the whole run spent in this phase, (0, 1]. */
    double weight = 1.0;

    /** Feed the phase (profile and weight) to @p fp. */
    void hashInto(stats::Fingerprinter &fp) const;
};

/** A workload as an ordered sequence of weighted phases. */
struct PhasedWorkload
{
    /** Workload name (phases carry derived names "<name>@<k>"). */
    std::string name;

    std::vector<Phase> phases;

    /**
     * Validate: at least one phase, weights positive and summing to 1
     * within tolerance, every profile valid.
     * @throws std::invalid_argument otherwise.
     */
    void validate() const;

    /** Weighted mean dynamic instruction count (billions). */
    double dynamicInstructionsBillions() const;

    /** Feed the whole phased model to @p fp. */
    void hashInto(stats::Fingerprinter &fp) const;

    /**
     * Stable content fingerprint over the name, phase count, and every
     * phase's full profile and weight (see WorkloadProfile::fingerprint).
     */
    std::uint64_t fingerprint() const;
};

/**
 * Derive a phased workload from a base profile: each phase is a
 * deterministic perturbation of the base (footprints, mix, branch
 * behaviour drift between phases), with Dirichlet-like weights.
 * Models multi-phase programs without hand-writing every phase.
 *
 * @param base Stationary base profile.
 * @param num_phases Number of phases (>= 1).
 * @param drift Relative magnitude of per-phase drift (0.3 gives
 *        clearly distinct phases; 0.05 nearly stationary ones).
 */
PhasedWorkload derivePhases(const WorkloadProfile &base,
                            std::size_t num_phases, double drift = 0.3);

} // namespace trace
} // namespace speclens

#endif // SPECLENS_TRACE_PHASED_WORKLOAD_H
