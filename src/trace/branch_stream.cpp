/**
 * @file
 * Branch outcome stream implementation.
 */

#include "branch_stream.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace speclens {
namespace trace {

BranchStream::BranchStream(const BranchModel &model, stats::Rng &rng)
{
    std::uint32_t n = model.static_branches;

    // Build the loop-structured dynamic sequence first, Zipf-skewed:
    // squaring a uniform variate concentrates the sequence on
    // low-numbered static branches, matching the heavy-tailed
    // execution frequency of real branch sites.  Building it before
    // the class assignment lets the assignment stratify against the
    // *realized* per-id frequencies — a single 64-1024 entry sequence
    // deviates from the Zipf ideal enough to skew dynamic class shares
    // otherwise.
    std::size_t sequence_length = std::max<std::size_t>(64, n / 4);
    sequence_.reserve(sequence_length);
    std::vector<double> frequency(n, 0.0);
    for (std::size_t i = 0; i < sequence_length; ++i) {
        double u = rng.uniform();
        auto id =
            static_cast<std::uint32_t>(u * u * static_cast<double>(n));
        if (id >= n)
            id = n - 1;
        sequence_.push_back(id);
        frequency[id] += 1.0 / static_cast<double>(sequence_length);
    }

    // The dynamic stream is heavily skewed, so behaviour classes are
    // assigned greedily against each id's dynamic weight rather than
    // by independent coin flips — otherwise a single unlucky
    // assignment of a hard branch to the hottest id would dominate the
    // whole stream.
    branches_.reserve(n);
    double cum_all = 0.0;
    double cum_hard = 0.0;
    double cum_patterned = 0.0;
    double cum_taken = 0.0;
    double hard_share = 1.0 - model.biased_fraction;
    for (std::uint32_t i = 0; i < n; ++i) {
        double p_i = frequency[i];
        cum_all += p_i;

        StaticBranch b{};
        // Midpoint rule: take the class only when doing so keeps the
        // running dynamic share closest to the target — comparing with
        // half of p_i included prevents a hot id (several % of the
        // whole stream) from blowing straight through a small quota.
        bool hard = cum_hard + 0.5 * p_i < hard_share * cum_all;
        if (!hard) {
            // Strongly biased branch; directions are balanced against
            // the global taken fraction the same stratified way.
            bool taken_dir =
                cum_taken + 0.5 * p_i < model.taken_fraction * cum_all;
            if (taken_dir)
                cum_taken += p_i;
            b.taken_prob = taken_dir ? 0.995 : 0.005;
            b.patterned = false;
        } else {
            cum_hard += p_i;
            bool patterned = cum_patterned + 0.5 * p_i <
                             model.patterned_fraction * cum_hard;
            if (patterned) {
                cum_patterned += p_i;
                // Patterned branch: deterministic repeating history.
                b.patterned = true;
                b.period = static_cast<std::uint8_t>(2 + rng.below(7));
                b.pattern =
                    static_cast<std::uint16_t>(rng.next() & 0xffff);
                // Guarantee the pattern is not constant over its
                // period, otherwise it degenerates into a biased
                // branch.
                std::uint16_t mask =
                    static_cast<std::uint16_t>((1u << b.period) - 1);
                if ((b.pattern & mask) == 0 || (b.pattern & mask) == mask)
                    b.pattern ^= 0x5555;
                b.position =
                    static_cast<std::uint32_t>(rng.below(b.period));
                // Account the pattern's own taken share toward the
                // global taken-fraction budget.
                int taken_bits = 0;
                for (unsigned bit = 0; bit < b.period; ++bit)
                    taken_bits += (b.pattern >> bit) & 1u;
                cum_taken += p_i * static_cast<double>(taken_bits) /
                             static_cast<double>(b.period);
            } else {
                // Hard branch: weak bias centred near the taken
                // fraction.
                double centre = std::clamp(model.taken_fraction, 0.35,
                                           0.65);
                b.taken_prob = std::clamp(
                    centre + rng.uniform(-0.2, 0.2), 0.3, 0.7);
                b.patterned = false;
                cum_taken += p_i * b.taken_prob;
            }
        }
        branches_.push_back(b);
    }
}

double
BranchStream::patternedShare() const
{
    if (branches_.empty())
        return 0.0;
    std::size_t count = std::count_if(branches_.begin(), branches_.end(),
                                      [](const StaticBranch &b) {
                                          return b.patterned;
                                      });
    return static_cast<double>(count) /
           static_cast<double>(branches_.size());
}

} // namespace trace
} // namespace speclens
