/**
 * @file
 * Synthetic conditional-branch outcome generation.
 *
 * A workload's control flow is modelled as a population of static
 * branches with three behaviour classes:
 *
 *  - strongly biased branches (taken or not-taken ~98% of the time),
 *    which every predictor captures;
 *  - patterned branches that repeat a short deterministic history
 *    pattern — mispredicted by a bimodal predictor but learnable by
 *    history-based predictors (gshare/TAGE/perceptron);
 *  - weakly biased "hard" branches that behave like a biased coin and
 *    bound every predictor's accuracy.
 *
 * The class shares are the BranchModel knobs; they position a benchmark
 * on the paper's branch-behaviour spectrum (Fig. 9) and create the
 * machine-to-machine misprediction variation behind the branch row of
 * the sensitivity table (Table IX).
 *
 * Dynamic branch selection is skewed (a handful of static branches
 * dominates real instruction streams) and, crucially, *repetitive*:
 * the stream walks a loop-structured control-flow sequence rather than
 * sampling branches independently.  Without repeating branch
 * sequences, global-history predictors (gshare, TAGE, perceptron)
 * could never train — every (branch, history) pair would be unique —
 * and the decade of predictor improvements between the Table IV
 * machines would be invisible.
 */

#ifndef SPECLENS_TRACE_BRANCH_STREAM_H
#define SPECLENS_TRACE_BRANCH_STREAM_H

#include <cstdint>
#include <vector>

#include "stats/rng.h"
#include "trace/workload_profile.h"

namespace speclens {
namespace trace {

/** Generator of (static branch id, outcome) pairs. */
class BranchStream
{
  public:
    /**
     * Build the static branch population.
     *
     * @param model Behaviour-class shares and bias targets.
     * @param rng Used to draw the static population; the same generator
     *            is typically reused for the dynamic stream.
     */
    BranchStream(const BranchModel &model, stats::Rng &rng);

    /** One dynamic branch. */
    struct Outcome
    {
        std::uint32_t id;  //!< Static branch identifier.
        bool taken;        //!< Resolved direction.
    };

    /** Produce the next dynamic branch (inline below; hot path). */
    Outcome next(stats::Rng &rng);

    /** Number of static branches in the population. */
    std::size_t staticCount() const { return branches_.size(); }

    /** Population statistics for tests: fraction of patterned branches. */
    double patternedShare() const;

  private:
    struct StaticBranch
    {
        double taken_prob;        //!< Bernoulli bias when not patterned.
        bool patterned;           //!< Follows a deterministic pattern.
        std::uint8_t period;      //!< Pattern period (2..8).
        std::uint16_t pattern;    //!< Pattern bits (bit i = outcome i).
        std::uint32_t position;   //!< Current index into the pattern.
    };

    std::vector<StaticBranch> branches_;

    /**
     * Loop-structured dynamic sequence of static-branch ids; next()
     * mostly walks this cyclically and occasionally restarts at a
     * random position (an outer-loop iteration or an indirect call).
     */
    std::vector<std::uint32_t> sequence_;
    std::size_t position_ = 0;
    std::uint64_t step_ = 0; //!< Global dynamic-branch counter.
};

// ---------------------------------------------------------------------
// Hot-path definition, in the header so the per-branch draw inlines
// into the generator's batch fill loop.  The RNG draw sequence and the
// produced outcomes are part of the bit-identical contract.

inline BranchStream::Outcome
BranchStream::next(stats::Rng &rng)
{
    // Mostly walk the loop body; occasionally take an irregular jump
    // to a random sequence position (outer loop restart, call through
    // a pointer), which perturbs global history realistically.  Kept
    // rare: every jump invalidates ~one history-window of context for
    // all history-based predictors.
    if (rng.bernoulli(0.005))
        position_ = static_cast<std::size_t>(rng.below(sequence_.size()));
    std::uint32_t id = sequence_[position_];
    // position_ + 1 <= size, so the cyclic wrap is a compare, not the
    // modulo it used to be; the stored value is identical.
    ++position_;
    if (position_ == sequence_.size())
        position_ = 0;

    StaticBranch &b = branches_[id];
    bool taken;
    if (b.patterned) {
        // The pattern phase advances with the *global* control-flow
        // walk, so a patterned branch's outcome is a deterministic
        // function of where the loop nest currently is — exactly the
        // correlation global-history predictors exploit.  A per-branch
        // starting phase keeps distinct branches out of lockstep.
        taken = (b.pattern >>
                 ((step_ + b.position) % b.period)) & 1u;
    } else {
        taken = rng.bernoulli(b.taken_prob);
    }
    ++step_;
    return {id, taken};
}

} // namespace trace
} // namespace speclens

#endif // SPECLENS_TRACE_BRANCH_STREAM_H
