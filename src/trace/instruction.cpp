/**
 * @file
 * Instruction helpers.
 */

#include "instruction.h"

namespace speclens {
namespace trace {

std::string
opClassName(OpClass op)
{
    switch (op) {
      case OpClass::IntAlu: return "int";
      case OpClass::FpAlu: return "fp";
      case OpClass::Simd: return "simd";
      case OpClass::Load: return "load";
      case OpClass::Store: return "store";
      case OpClass::Branch: return "branch";
      case OpClass::Other: return "other";
    }
    return "invalid";
}

} // namespace trace
} // namespace speclens
