/**
 * @file
 * Streaming synthetic instruction-trace generator.
 *
 * Combines the instruction-mix, address-stream and branch-stream models
 * of a WorkloadProfile into a single deterministic stream of
 * Instruction records.  The stream for a given (profile, seed) pair is
 * bit-identical across runs and platforms, so every table and figure
 * the benchmark harness regenerates is exactly reproducible.
 */

#ifndef SPECLENS_TRACE_TRACE_GENERATOR_H
#define SPECLENS_TRACE_TRACE_GENERATOR_H

#include <cstdint>
#include <vector>

#include "stats/rng.h"
#include "trace/address_stream.h"
#include "trace/branch_stream.h"
#include "trace/instruction.h"
#include "trace/record_batch.h"
#include "trace/workload_profile.h"

namespace speclens {
namespace trace {

/** Deterministic generator of synthetic dynamic instruction streams. */
class TraceGenerator
{
  public:
    /**
     * @param profile Validated workload model (validate() is called).
     * @param seed_salt Extra entropy mixed into the profile's own seed;
     *        pass different salts to obtain statistically independent
     *        re-runs of the same workload.
     */
    explicit TraceGenerator(const WorkloadProfile &profile,
                            std::uint64_t seed_salt = 0);

    /** Generate the next dynamic instruction. */
    Instruction next();

    /**
     * Generate up to min(@p count, capacity) records into @p batch,
     * overwriting its previous contents, and return the number
     * produced.  This is the hot-path form: the fused simulation
     * pipeline pulls one batch at a time so records never accumulate
     * into a window-sized buffer.  The record stream is bit-identical
     * to repeated next() calls — both are emitted by the same
     * primitive.
     */
    std::size_t fill(RecordBatch &batch, std::uint64_t count);

    /**
     * Generate @p count instructions into a vector.  Thin adapter over
     * fill() kept for tests and the materialized baseline path; the
     * stream is identical to the batched form by construction.
     */
    std::vector<Instruction> generate(std::size_t count);

    /** The profile this generator draws from. */
    const WorkloadProfile &profile() const { return profile_; }

  private:
    /** Emit one record; the single primitive behind next() and fill(). */
    void step(std::uint64_t &pc, OpClass &op, std::uint64_t &address,
              std::uint32_t &branch_id, bool &taken, bool &kernel);

    WorkloadProfile profile_;
    stats::Rng rng_;
    DataAddressStream data_;
    CodeAddressStream code_;
    BranchStream branches_;

    // Cumulative op-class thresholds, precomputed from the mix.
    double p_load_;
    double p_store_;
    double p_branch_;
    double p_fp_;
    double p_simd_;
    double p_other_;
};

} // namespace trace
} // namespace speclens

#endif // SPECLENS_TRACE_TRACE_GENERATOR_H
