/**
 * @file
 * Statistical workload model: the parameters from which a synthetic
 * dynamic instruction stream is generated.
 *
 * Each benchmark in the suite databases (src/suites) is described by one
 * WorkloadProfile.  The parameters are calibrated against the paper's
 * published measurements: Table I fixes the dynamic instruction count,
 * instruction mix and Skylake CPI of every CPU2017 benchmark; Table II
 * bounds the MPKI ranges; and the text fixes qualitative properties
 * (mcf's distinctiveness, cactuBSSN's memory/TLB behaviour, perlbench's
 * and gcc's instruction-cache pressure, and so on).
 *
 * The model has four parts:
 *  - InstructionMix: op-class probabilities (Table I columns).
 *  - MemoryModel: a mixture of working sets.  Each access picks a set by
 *    weight and either streams through it or touches a uniformly random
 *    line.  Footprint sizes relative to cache/TLB capacities are what
 *    make the measured metrics *machine dependent*, which is the
 *    property the paper's seven-machine methodology exists to exploit.
 *  - BranchModel: a static branch population with biased and patterned
 *    members, controlling misprediction rates per predictor type.
 *  - ExecutionModel: non-memory CPI contributions (issue width limits,
 *    dependency stalls), used by the top-down CPI-stack model.
 */

#ifndef SPECLENS_TRACE_WORKLOAD_PROFILE_H
#define SPECLENS_TRACE_WORKLOAD_PROFILE_H

#include <array>
#include <cstdint>
#include <string>

#include "stats/fingerprint.h"

namespace speclens {
namespace trace {

/**
 * Dynamic instruction mix as fractions of the total stream.
 * load + store + branch + fp + simd must be <= 1; the remainder is
 * integer ALU plus a small fixed share of OpClass::Other.
 */
struct InstructionMix
{
    double load = 0.25;   //!< Fraction of loads.
    double store = 0.10;  //!< Fraction of stores.
    double branch = 0.12; //!< Fraction of conditional branches.
    double fp = 0.0;      //!< Fraction of scalar FP operations.
    double simd = 0.0;    //!< Fraction of SIMD operations.

    /** Fraction of integer-ALU + other operations (the remainder). */
    double remainder() const { return 1.0 - load - store - branch - fp - simd; }

    /** True when all fractions are in range and sum to <= 1. */
    bool valid() const;

    /** Feed every field, in declaration order, to @p fp. */
    void hashInto(stats::Fingerprinter &fp) const;
};

/** One component of the data working-set mixture. */
struct WorkingSet
{
    double bytes = 32 * 1024; //!< Footprint in bytes.
    double weight = 1.0;      //!< Relative probability of access.

    /**
     * Fraction of accesses to this set that stream sequentially
     * (stride-sized steps) rather than touching a random element.
     * Streaming accesses hit in L1 until they cross a line boundary,
     * modelling spatial locality.
     */
    double sequential = 0.0;

    /**
     * Distance in bytes between addressable elements of the set.  The
     * default (one cache line) models densely used data.  A page-sized
     * stride models sparse structures — hash indexes, pointer arrays —
     * that touch one line per page: the cache sees few distinct lines
     * (bytes / stride) while the TLB sees every page, decoupling cache
     * pressure from TLB pressure.
     */
    double stride_bytes = 64;

    /** Feed every field, in declaration order, to @p fp. */
    void hashInto(stats::Fingerprinter &fp) const;
};

/** Data- and instruction-side locality model. */
struct MemoryModel
{
    /**
     * Data working-set mixture, ordered roughly by the cache level
     * that captures it on a contemporary machine: hot (L1-resident),
     * mid (L2-scale), big (LLC-scale) and vast (beyond any cache).
     * The weights of the non-hot sets are small — real programs hit
     * L1 for the overwhelming majority of accesses, and the paper's
     * Table II shows strong level-by-level filtering (L1D MPKI up to
     * ~98 but L3 MPKI at most ~5).
     */
    std::array<WorkingSet, 4> data{
        WorkingSet{16 * 1024, 0.95, 0.2},
        WorkingSet{256 * 1024, 0.03, 0.2},
        WorkingSet{4.0 * 1024 * 1024, 0.015, 0.2},
        WorkingSet{64.0 * 1024 * 1024, 0.005, 0.0},
    };

    /** Static code footprint in bytes. */
    double code_bytes = 64 * 1024;

    /**
     * Fraction of taken-branch targets that stay inside the hot code
     * region (a loop nest); the rest jump uniformly across the whole
     * code footprint.  Low values model perlbench/gcc-style I-cache
     * pressure.
     */
    double code_locality = 0.95;

    /** Hot code region size in bytes (subset of code_bytes). */
    double hot_code_bytes = 4 * 1024;

    /** True when all parameters are physically meaningful. */
    bool valid() const;

    /** Feed every field, in declaration order, to @p fp. */
    void hashInto(stats::Fingerprinter &fp) const;
};

/** Control-flow predictability model. */
struct BranchModel
{
    /** Number of distinct static branches in the stream. */
    std::uint32_t static_branches = 256;

    /** Mean fraction of branches resolving taken. */
    double taken_fraction = 0.5;

    /**
     * Fraction of static branches that are strongly biased (taken or
     * not-taken ~98% of the time) and therefore trivially predictable.
     * The remaining branches get a weak bias drawn from [0.25, 0.75].
     */
    double biased_fraction = 0.85;

    /**
     * Fraction of the *hard* (weakly biased) branches that actually
     * follow a short repeating pattern — mispredicted by a bimodal
     * predictor but captured by history-based predictors.  This knob
     * separates machines with simple vs. sophisticated predictors.
     */
    double patterned_fraction = 0.5;

    bool valid() const;

    /** Feed every field, in declaration order, to @p fp. */
    void hashInto(stats::Fingerprinter &fp) const;
};

/** Non-memory execution behaviour for the CPI model. */
struct ExecutionModel
{
    /**
     * Base CPI of the benchmark on an ideal memory system: issue-width
     * limits, long-latency FP chains, and inherent ILP.  Calibrated so
     * the total Skylake CPI matches Table I.
     */
    double base_cpi = 0.30;

    /**
     * Additional CPI from inter-instruction dependencies ("other" /
     * core-bound category of Fig. 1; dominant for blender and imagick).
     */
    double dependency_cpi = 0.05;

    /**
     * Memory-level parallelism: the divisor applied to miss penalties
     * (overlapping misses).  1 = fully serialised misses.
     */
    double mlp = 2.0;

    /** Fraction of instructions executed in kernel mode. */
    double kernel_fraction = 0.02;

    bool valid() const;

    /** Feed every field, in declaration order, to @p fp. */
    void hashInto(stats::Fingerprinter &fp) const;
};

/** Complete statistical description of one workload. */
struct WorkloadProfile
{
    /** Unique short name, e.g. "605.mcf_s". */
    std::string name;

    /** Dynamic instruction count of the real benchmark, in billions. */
    double dynamic_instructions_billions = 1000.0;

    InstructionMix mix;
    MemoryModel memory;
    BranchModel branch;
    ExecutionModel exec;

    /**
     * Validate all sub-models.
     * @throws std::invalid_argument naming the offending field.
     */
    void validate() const;

    /** Deterministic per-workload RNG seed derived from the name. */
    std::uint64_t seed() const;

    /** Feed the whole model (name and every sub-model) to @p fp. */
    void hashInto(stats::Fingerprinter &fp) const;

    /**
     * Stable content fingerprint of the complete model.  Any change to
     * any calibrated parameter — not just the name — yields a new
     * fingerprint, which is what lets the campaign artifact store
     * (core/artifact_store.h) detect stale entries after a model
     * recalibration.
     */
    std::uint64_t fingerprint() const;
};

} // namespace trace
} // namespace speclens

#endif // SPECLENS_TRACE_WORKLOAD_PROFILE_H
