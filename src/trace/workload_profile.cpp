/**
 * @file
 * Workload profile validation.
 */

#include "workload_profile.h"

#include <stdexcept>

#include "stats/rng.h"

namespace speclens {
namespace trace {

namespace {

bool
inUnit(double v)
{
    return v >= 0.0 && v <= 1.0;
}

} // namespace

bool
InstructionMix::valid() const
{
    return inUnit(load) && inUnit(store) && inUnit(branch) && inUnit(fp) &&
           inUnit(simd) && remainder() >= 0.0;
}

bool
MemoryModel::valid() const
{
    double total_weight = 0.0;
    for (const WorkingSet &ws : data) {
        if (ws.bytes < 64.0 || ws.weight < 0.0 || !inUnit(ws.sequential) ||
            ws.stride_bytes < 64.0 || ws.bytes < ws.stride_bytes) {
            return false;
        }
        total_weight += ws.weight;
    }
    return total_weight > 0.0 && code_bytes >= 64.0 &&
           hot_code_bytes >= 64.0 && hot_code_bytes <= code_bytes &&
           inUnit(code_locality);
}

bool
BranchModel::valid() const
{
    return static_branches > 0 && inUnit(taken_fraction) &&
           inUnit(biased_fraction) && inUnit(patterned_fraction);
}

bool
ExecutionModel::valid() const
{
    return base_cpi > 0.0 && dependency_cpi >= 0.0 && mlp >= 1.0 &&
           inUnit(kernel_fraction);
}

void
WorkloadProfile::validate() const
{
    if (name.empty())
        throw std::invalid_argument("WorkloadProfile: empty name");
    if (dynamic_instructions_billions <= 0.0)
        throw std::invalid_argument(name + ": non-positive instruction count");
    if (!mix.valid())
        throw std::invalid_argument(name + ": invalid instruction mix");
    if (!memory.valid())
        throw std::invalid_argument(name + ": invalid memory model");
    if (!branch.valid())
        throw std::invalid_argument(name + ": invalid branch model");
    if (!exec.valid())
        throw std::invalid_argument(name + ": invalid execution model");
}

std::uint64_t
WorkloadProfile::seed() const
{
    return stats::hashName(name);
}

// ---------------------------------------------------------------------
// Fingerprint hooks.  Each hook feeds its fields in declaration order,
// prefixed by a type tag so structurally identical models of different
// types cannot alias.  Adding a field to a model?  Feed it here too —
// the store_test round-trip suite cross-checks that profiles differing
// in any calibrated parameter get distinct fingerprints.
// ---------------------------------------------------------------------

void
InstructionMix::hashInto(stats::Fingerprinter &hasher) const
{
    hasher.tag("mix");
    hasher.f64(load);
    hasher.f64(store);
    hasher.f64(branch);
    hasher.f64(fp);
    hasher.f64(simd);
}

void
WorkingSet::hashInto(stats::Fingerprinter &fp) const
{
    fp.tag("wset");
    fp.f64(bytes);
    fp.f64(weight);
    fp.f64(sequential);
    fp.f64(stride_bytes);
}

void
MemoryModel::hashInto(stats::Fingerprinter &fp) const
{
    fp.tag("mem");
    for (const WorkingSet &ws : data)
        ws.hashInto(fp);
    fp.f64(code_bytes);
    fp.f64(code_locality);
    fp.f64(hot_code_bytes);
}

void
BranchModel::hashInto(stats::Fingerprinter &fp) const
{
    fp.tag("branch");
    fp.u64(static_branches);
    fp.f64(taken_fraction);
    fp.f64(biased_fraction);
    fp.f64(patterned_fraction);
}

void
ExecutionModel::hashInto(stats::Fingerprinter &fp) const
{
    fp.tag("exec");
    fp.f64(base_cpi);
    fp.f64(dependency_cpi);
    fp.f64(mlp);
    fp.f64(kernel_fraction);
}

void
WorkloadProfile::hashInto(stats::Fingerprinter &fp) const
{
    fp.tag("profile");
    fp.str(name);
    fp.f64(dynamic_instructions_billions);
    mix.hashInto(fp);
    memory.hashInto(fp);
    branch.hashInto(fp);
    exec.hashInto(fp);
}

std::uint64_t
WorkloadProfile::fingerprint() const
{
    stats::Fingerprinter fp;
    hashInto(fp);
    return fp.value();
}

} // namespace trace
} // namespace speclens
