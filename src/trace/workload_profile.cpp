/**
 * @file
 * Workload profile validation.
 */

#include "workload_profile.h"

#include <stdexcept>

#include "stats/rng.h"

namespace speclens {
namespace trace {

namespace {

bool
inUnit(double v)
{
    return v >= 0.0 && v <= 1.0;
}

} // namespace

bool
InstructionMix::valid() const
{
    return inUnit(load) && inUnit(store) && inUnit(branch) && inUnit(fp) &&
           inUnit(simd) && remainder() >= 0.0;
}

bool
MemoryModel::valid() const
{
    double total_weight = 0.0;
    for (const WorkingSet &ws : data) {
        if (ws.bytes < 64.0 || ws.weight < 0.0 || !inUnit(ws.sequential) ||
            ws.stride_bytes < 64.0 || ws.bytes < ws.stride_bytes) {
            return false;
        }
        total_weight += ws.weight;
    }
    return total_weight > 0.0 && code_bytes >= 64.0 &&
           hot_code_bytes >= 64.0 && hot_code_bytes <= code_bytes &&
           inUnit(code_locality);
}

bool
BranchModel::valid() const
{
    return static_branches > 0 && inUnit(taken_fraction) &&
           inUnit(biased_fraction) && inUnit(patterned_fraction);
}

bool
ExecutionModel::valid() const
{
    return base_cpi > 0.0 && dependency_cpi >= 0.0 && mlp >= 1.0 &&
           inUnit(kernel_fraction);
}

void
WorkloadProfile::validate() const
{
    if (name.empty())
        throw std::invalid_argument("WorkloadProfile: empty name");
    if (dynamic_instructions_billions <= 0.0)
        throw std::invalid_argument(name + ": non-positive instruction count");
    if (!mix.valid())
        throw std::invalid_argument(name + ": invalid instruction mix");
    if (!memory.valid())
        throw std::invalid_argument(name + ": invalid memory model");
    if (!branch.valid())
        throw std::invalid_argument(name + ": invalid branch model");
    if (!exec.valid())
        throw std::invalid_argument(name + ": invalid execution model");
}

std::uint64_t
WorkloadProfile::seed() const
{
    return stats::hashName(name);
}

} // namespace trace
} // namespace speclens
