/**
 * @file
 * Instruction record produced by the synthetic trace generator and
 * consumed by the micro-architecture simulators.
 *
 * SPEC CPU binaries are proprietary, so SpecLens replaces real dynamic
 * instruction streams with synthetic streams drawn from per-benchmark
 * statistical models (see trace/workload_profile.h).  The record below
 * carries exactly the information the trace-driven simulators need:
 * what kind of operation it is, which code address it was fetched from,
 * and — for memory and branch operations — the data address or the
 * branch identity/outcome.
 */

#ifndef SPECLENS_TRACE_INSTRUCTION_H
#define SPECLENS_TRACE_INSTRUCTION_H

#include <cstdint>
#include <string>

namespace speclens {
namespace trace {

/** Operation class of a dynamic instruction. */
enum class OpClass : std::uint8_t {
    IntAlu,  //!< Integer arithmetic / logic.
    FpAlu,   //!< Scalar floating-point arithmetic.
    Simd,    //!< Vector (SIMD) arithmetic.
    Load,    //!< Memory read.
    Store,   //!< Memory write.
    Branch,  //!< Conditional branch.
    Other,   //!< Everything else (moves, system, ...).
};

/** Human-readable op-class name, for reports and test diagnostics. */
std::string opClassName(OpClass op);

/** One dynamic instruction. */
struct Instruction
{
    /** Virtual address the instruction was fetched from. */
    std::uint64_t pc = 0;

    /** Operation class. */
    OpClass op = OpClass::IntAlu;

    /** Effective virtual address for Load/Store; 0 otherwise. */
    std::uint64_t address = 0;

    /** Static-branch identifier for Branch; 0 otherwise. */
    std::uint32_t branch_id = 0;

    /** Resolved direction for Branch; false otherwise. */
    bool taken = false;

    /** True when the instruction executes in kernel mode. */
    bool kernel = false;

    bool isLoad() const { return op == OpClass::Load; }
    bool isStore() const { return op == OpClass::Store; }
    bool isMemory() const { return isLoad() || isStore(); }
    bool isBranch() const { return op == OpClass::Branch; }
    bool isFloat() const { return op == OpClass::FpAlu; }
    bool isSimd() const { return op == OpClass::Simd; }
};

} // namespace trace
} // namespace speclens

#endif // SPECLENS_TRACE_INSTRUCTION_H
