/**
 * @file
 * Trace generator implementation.
 */

#include "trace_generator.h"

#include <algorithm>

namespace speclens {
namespace trace {

namespace {

/**
 * Share of the non-load/store/branch/fp/simd remainder modelled as
 * OpClass::Other (moves, system instructions) rather than integer ALU.
 */
constexpr double kOtherShareOfRemainder = 0.05;

} // namespace

TraceGenerator::TraceGenerator(const WorkloadProfile &profile,
                               std::uint64_t seed_salt)
    : profile_(profile),
      rng_(stats::combineSeeds(profile.seed(), seed_salt)),
      data_(profile.memory),
      code_(profile.memory),
      branches_(profile.branch, rng_)
{
    profile_.validate();
    const InstructionMix &mix = profile_.mix;
    p_load_ = mix.load;
    p_store_ = p_load_ + mix.store;
    p_branch_ = p_store_ + mix.branch;
    p_fp_ = p_branch_ + mix.fp;
    p_simd_ = p_fp_ + mix.simd;
    p_other_ = p_simd_ + mix.remainder() * kOtherShareOfRemainder;
}

void
TraceGenerator::step(std::uint64_t &pc, OpClass &op,
                     std::uint64_t &address, std::uint32_t &branch_id,
                     bool &taken, bool &kernel)
{
    pc = code_.nextPc();
    kernel = rng_.bernoulli(profile_.exec.kernel_fraction);
    address = 0;
    branch_id = 0;
    taken = false;

    double u = rng_.uniform();
    if (u < p_load_) {
        op = OpClass::Load;
        address = data_.next(rng_);
    } else if (u < p_store_) {
        op = OpClass::Store;
        address = data_.next(rng_);
    } else if (u < p_branch_) {
        op = OpClass::Branch;
        BranchStream::Outcome outcome = branches_.next(rng_);
        branch_id = outcome.id;
        taken = outcome.taken;
        if (outcome.taken)
            code_.takeBranch(rng_);
    } else if (u < p_fp_) {
        op = OpClass::FpAlu;
    } else if (u < p_simd_) {
        op = OpClass::Simd;
    } else if (u < p_other_) {
        op = OpClass::Other;
    } else {
        op = OpClass::IntAlu;
    }
}

Instruction
TraceGenerator::next()
{
    Instruction inst;
    step(inst.pc, inst.op, inst.address, inst.branch_id, inst.taken,
         inst.kernel);
    return inst;
}

std::size_t
TraceGenerator::fill(RecordBatch &batch, std::uint64_t count)
{
    std::size_t n = static_cast<std::size_t>(
        std::min<std::uint64_t>(count, kRecordBatchCapacity));
    for (std::size_t i = 0; i < n; ++i) {
        bool taken = false, kernel = false;
        step(batch.pc[i], batch.op[i], batch.address[i],
             batch.branch_id[i], taken, kernel);
        batch.flags[i] =
            static_cast<std::uint8_t>((taken ? RecordBatch::kTakenBit : 0) |
                                      (kernel ? RecordBatch::kKernelBit : 0));
    }
    batch.size = n;
    return n;
}

std::vector<Instruction>
TraceGenerator::generate(std::size_t count)
{
    std::vector<Instruction> out;
    out.reserve(count);
    RecordBatch batch;
    std::size_t remaining = count;
    while (remaining > 0) {
        std::size_t n = fill(batch, remaining);
        for (std::size_t i = 0; i < n; ++i)
            out.push_back(batch.instruction(i));
        remaining -= n;
    }
    return out;
}

} // namespace trace
} // namespace speclens
