/**
 * @file
 * Trace generator implementation.
 */

#include "trace_generator.h"

namespace speclens {
namespace trace {

namespace {

/**
 * Share of the non-load/store/branch/fp/simd remainder modelled as
 * OpClass::Other (moves, system instructions) rather than integer ALU.
 */
constexpr double kOtherShareOfRemainder = 0.05;

} // namespace

TraceGenerator::TraceGenerator(const WorkloadProfile &profile,
                               std::uint64_t seed_salt)
    : profile_(profile),
      rng_(stats::combineSeeds(profile.seed(), seed_salt)),
      data_(profile.memory),
      code_(profile.memory),
      branches_(profile.branch, rng_)
{
    profile_.validate();
    const InstructionMix &mix = profile_.mix;
    p_load_ = mix.load;
    p_store_ = p_load_ + mix.store;
    p_branch_ = p_store_ + mix.branch;
    p_fp_ = p_branch_ + mix.fp;
    p_simd_ = p_fp_ + mix.simd;
    p_other_ = p_simd_ + mix.remainder() * kOtherShareOfRemainder;
}

Instruction
TraceGenerator::next()
{
    Instruction inst;
    inst.pc = code_.nextPc();
    inst.kernel = rng_.bernoulli(profile_.exec.kernel_fraction);

    double u = rng_.uniform();
    if (u < p_load_) {
        inst.op = OpClass::Load;
        inst.address = data_.next(rng_);
    } else if (u < p_store_) {
        inst.op = OpClass::Store;
        inst.address = data_.next(rng_);
    } else if (u < p_branch_) {
        inst.op = OpClass::Branch;
        BranchStream::Outcome outcome = branches_.next(rng_);
        inst.branch_id = outcome.id;
        inst.taken = outcome.taken;
        if (outcome.taken)
            code_.takeBranch(rng_);
    } else if (u < p_fp_) {
        inst.op = OpClass::FpAlu;
    } else if (u < p_simd_) {
        inst.op = OpClass::Simd;
    } else if (u < p_other_) {
        inst.op = OpClass::Other;
    } else {
        inst.op = OpClass::IntAlu;
    }
    return inst;
}

std::vector<Instruction>
TraceGenerator::generate(std::size_t count)
{
    std::vector<Instruction> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        out.push_back(next());
    return out;
}

} // namespace trace
} // namespace speclens
